// Tables, tuples and rules — the programmer-facing core of the jstar
// runtime (§3).
//
// A JStar `table` declaration becomes a TableDecl<T> where T is a plain
// immutable struct (the "immutable Java object with a fixed set of named
// fields").  The declaration carries:
//   * the orderby list        — lit/seq/par levels (§4, §5),
//   * a hash function         — set-semantics dedup needs it,
//   * an optional primary key — the `->` arrow in table declarations,
//   * an optional store factory — the §1.4 late data-structure commitment,
//   * an optional effect      — external action when the tuple leaves the
//                               Delta set (§3: "requests for external
//                               actions ... performed when those tuples are
//                               taken out of the Delta Set").
//
// Rules (`foreach (T t) {...}`) are callables fired with a RuleCtx that
// carries the current causality timestamp; RuleCtx::put is checked
// dynamically against the law of causality (§4).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "concurrent/striped_hash_map.h"
#include "core/batch.h"
#include "core/column_store.h"
#include "core/delta_tree.h"
#include "core/flat_store.h"
#include "core/gamma_store.h"
#include "core/key.h"
#include "core/query.h"
#include "core/query_plan.h"
#include "core/window_store.h"
#include "core/orderby.h"
#include "core/simd.h"
#include "core/stats.h"
#include "sched/fork_join_pool.h"
#include "util/check.h"

namespace jstar {

/// Thrown when a rule violates the law of causality at runtime: it put a
/// tuple whose timestamp is strictly before the trigger's timestamp.
class CausalityViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Records the dynamic table→table dataflow (which tables each trigger's
/// rules put into), feeding the viz module's Fig-7-style graphs.
class EdgeMatrix {
 public:
  void resize(std::size_t tables) {
    counts_ = std::vector<std::atomic<std::int64_t>>(tables * tables);
    n_ = tables;
  }
  void record(int from, int to) {
    if (from < 0 || n_ == 0) return;
    counts_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t count(int from, int to) const {
    if (n_ == 0) return 0;
    return counts_[static_cast<std::size_t>(from) * n_ +
                   static_cast<std::size_t>(to)]
        .load(std::memory_order_relaxed);
  }
  std::size_t tables() const { return n_; }

 private:
  std::vector<std::atomic<std::int64_t>> counts_;
  std::size_t n_ = 0;
};

/// Execution context passed to every rule invocation.  `now` is the
/// causality timestamp of the trigger tuple's batch.
class RuleCtx {
 public:
  RuleCtx(DeltaKey now, int from_table, EdgeMatrix* edges,
          std::int64_t epoch = 0, int sign = +1)
      : now_(std::move(now)), from_table_(from_table), edges_(edges),
        epoch_(epoch), sign_(sign) {}

  /// The causality timestamp the rule is executing at.
  const DeltaKey& now() const { return now_; }
  int from_table() const { return from_table_; }
  EdgeMatrix* edges() const { return edges_; }
  /// True for initial puts performed before the engine starts running.
  bool initial() const { return now_.empty(); }
  /// The streaming epoch this rule fires in (Engine::begin_epoch clock);
  /// 0 for one-shot batch runs.  Causality timestamps stay per-epoch local:
  /// mail and stream ingestion enter as initial puts between runs, so an
  /// epoch's keys never compare against a previous epoch's.
  std::int64_t epoch() const { return epoch_; }
  /// +1 when the rule re-runs for an inserted trigger, -1 for a retracted
  /// one (delta-correct recomputation: the same rule body is replayed and
  /// every put it makes is multiplied by this sign, so the downstream
  /// facts a retracted trigger once derived are retracted in turn).
  int sign() const { return sign_; }
  bool retraction() const { return sign_ < 0; }

 private:
  DeltaKey now_;
  int from_table_;
  EdgeMatrix* edges_;
  std::int64_t epoch_;
  int sign_;
};

// ---------------------------------------------------------------------------

/// Declarative description of a table.  Build one, then register it with
/// Engine::table().  All setters return *this for chaining.
template <typename T>
class TableDecl {
 public:
  using StoreFactory =
      std::function<std::unique_ptr<GammaStore<T>>(bool parallel)>;

  explicit TableDecl(std::string name) : name_(std::move(name)) {}

  /// Adds a capitalised literal level (ordered by `order` declarations).
  TableDecl& orderby_lit(std::string lit_name) {
    spec_.push_back({OrderByLevel::Kind::Lit, lit_name});
    levels_.push_back(Level{LevelKind::Lit, std::move(lit_name), {}});
    return *this;
  }

  /// Adds a `seq` level: tuples are ordered by this field's value.
  TableDecl& orderby_seq(std::string field_name,
                         std::function<std::int64_t(const T&)> getter) {
    spec_.push_back({OrderByLevel::Kind::Seq, field_name});
    levels_.push_back(Level{LevelKind::Seq, std::move(field_name),
                            std::move(getter)});
    return *this;
  }

  /// Convenience overload for an integral member pointer.
  template <typename M>
  TableDecl& orderby_seq(std::string field_name, M T::*member) {
    return orderby_seq(std::move(field_name), [member](const T& t) {
      return static_cast<std::int64_t>(t.*member);
    });
  }

  /// Adds a `par` level: tuples differing only here are unordered, hence
  /// executable in parallel.  Recorded for documentation/viz only.
  TableDecl& orderby_par(std::string field_name) {
    spec_.push_back({OrderByLevel::Kind::Par, field_name});
    levels_.push_back(Level{LevelKind::Par, std::move(field_name), {}});
    return *this;
  }

  /// Hash over the tuple's fields, required for set-semantics dedup.
  /// Use jstar::hash_fields(t.a, t.b, ...).
  TableDecl& hash(std::function<std::size_t(const T&)> h) {
    hash_ = std::move(h);
    return *this;
  }

  /// Declares a primary key (the `->` in table declarations): at most one
  /// tuple per key value may exist; later conflicting tuples are rejected
  /// and counted in stats().pk_conflicts.
  TableDecl& primary_key(std::function<std::int64_t(const T&)> pk) {
    pk_ = std::move(pk);
    return *this;
  }

  /// Member-pointer form: additionally records the field's identity so the
  /// query planner can route query::eq on this field through the pk index
  /// (the O(1) PkProbe access path).
  template <typename M>
  TableDecl& primary_key(M T::*member) {
    pk_tag_ = query::field_tag(member);
    return primary_key(std::function<std::int64_t(const T&)>(
        [member](const T& t) { return static_cast<std::int64_t>(t.*member); }));
  }

  /// Overrides the Gamma data structure (the §1.4 / §6.2 tuning hook).
  TableDecl& store_factory(StoreFactory f) {
    store_factory_ = std::move(f);
    return *this;
  }

  /// §6.4 native-array preset: swaps the Gamma structure for the sorted
  /// contiguous-array substrate (core/flat_store.h).  Still ordered, so
  /// range plans route through it; scans run over one cache-contiguous
  /// span via the chunked pushdown.  Reuses this table's hash() for the
  /// staging buffer, and composes with retain(N): the flat store then
  /// epoch-tags tuples and compacts in place at epoch boundaries.
  TableDecl& flat_store() {
    preset_ = StorePreset::FlatOrdered;
    return *this;
  }

  /// §6.4 open-addressing preset (core/flat_store.h): power-of-two
  /// capacity, linear probing, contiguous slot runs for chunked scans.
  /// Unordered — pair with secondary indexes when the query key is fully
  /// known.  With retain(N) this falls back to the bucketed window store
  /// (open addressing cannot drop whole epochs without a rebuild).
  TableDecl& flat_hash_store() {
    preset_ = StorePreset::FlatHash;
    return *this;
  }

  /// Columnar (SoA) preset (core/column_store.h): shreds tuples into
  /// per-field contiguous columns.  `members` must name *every* field of
  /// T (checked at runtime by round-tripping early inserts), in any
  /// order; field types must be arithmetic.  Still ordered by the tuple's
  /// operator<, so range plans route here unchanged — and residual full
  /// scans over exact predicates on these fields compile to vectorized
  /// per-column kernels (count_if/fold/min_by never materialise tuples).
  /// Composes with retain(N): rows are epoch-tagged and every column is
  /// compacted in place at epoch boundaries.
  template <typename... Ms>
  TableDecl& columns(Ms T::*... members) {
    static_assert(sizeof...(Ms) >= 1, "columns() needs at least one field");
    preset_ = StorePreset::Columnar;
    columnar_factory_ = [members...](const std::atomic<std::int64_t>* clock,
                                     std::int64_t keep,
                                     std::function<std::size_t(const T&)> h)
        -> std::unique_ptr<GammaStore<T>> {
      if (keep >= 1) {
        return std::make_unique<ColumnStore<T, FnHash<T>, Ms T::*...>>(
            clock, keep, FnHash<T>{std::move(h)}, members...);
      }
      return std::make_unique<ColumnStore<T, FnHash<T>, Ms T::*...>>(
          FnHash<T>{std::move(h)}, members...);
    };
    return *this;
  }

  /// Manual lifetime hint (Fig 3 step 4, §6.6): tuples carry a
  /// nondecreasing epoch in `epoch_of`, and rules only query the most
  /// recent `keep` epochs; older tuples are retired from Gamma as the
  /// maximum epoch advances.  Median's two-iteration array is
  /// retain_epochs(iter, 2).
  /// Accepts a lambda or a pointer-to-member (std::function invokes both).
  /// The store is built at configure() time so it can reuse this table's
  /// hash() function for its buckets.
  TableDecl& retain_epochs(std::function<std::int64_t(const T&)> epoch_of,
                           std::int64_t keep) {
    retain_epoch_of_ = std::move(epoch_of);
    retain_keep_ = keep;
    return *this;
  }

  /// Streaming lifetime hint — `retain(N)`: tuples live for the N most
  /// recent *engine* epochs (the Engine::begin_epoch clock that
  /// src/stream/streaming.h advances once per ingestion slice) and are
  /// retired at the next epoch boundary after they fall out of the window.
  /// The middle ground between full Gamma (retain everything forever —
  /// unbounded under an infinite stream) and -noGamma (retain nothing):
  /// rules may still join against the recent past, but the heap stays
  /// proportional to the window.  Unlike retain_epochs, tuples need no
  /// epoch field; arrival time is the epoch.  Tables with a primary key
  /// keep their pk index forever — combine with care.
  TableDecl& retain(std::int64_t keep) {
    retain_engine_keep_ = keep;
    return *this;
  }

  /// External side effect executed once per tuple when it leaves the Delta
  /// set (the kosher way to print, §6.2 footnote 8).
  TableDecl& effect(std::function<void(const T&)> e) {
    effect_ = std::move(e);
    return *this;
  }

  /// Opts the table into counted (multiset) Gamma semantics, the
  /// prerequisite for Table::retract / Table::upsert (ROADMAP item 4).
  /// Each tuple carries an insertion multiplicity — the signed sum of
  /// its puts and retracts — and is present iff the count is >= 1.
  /// Rules fire exactly on presence transitions: once with sign +1 when
  /// the count first goes positive, once with sign -1 when it returns to
  /// zero, and the rule's own puts inherit the trigger's sign — so a
  /// retraction re-derives exactly the affected downstream cone.  Counts
  /// are commutative, which is what keeps sequential, BSP and async
  /// sharded execution confluent under interleaved insert/retract
  /// schedules.  A retract arriving before its insert records a debt
  /// (count -1) that annihilates the later insert.  Must be declared up
  /// front: enabling counting after tuples exist would miscount them.
  /// Incompatible with -noGamma, -noDelta and retain_epochs; the
  /// configured store must support erase() (every built-in substrate
  /// does).
  TableDecl& counted() {
    counted_ = true;
    return *this;
  }

  /// External side effect executed once per tuple when a retraction
  /// removes it from Gamma (the counterpart of effect() for the -1
  /// transition).  Requires counted().
  TableDecl& retract_effect(std::function<void(const T&)> e) {
    retract_effect_ = std::move(e);
    return *this;
  }

  const std::string& name() const { return name_; }

 private:
  template <typename U>
  friend class Table;

  enum class LevelKind { Lit, Seq, Par };
  enum class StorePreset { None, FlatOrdered, FlatHash, Columnar };
  /// Built by columns(): configure() calls it with the engine clock, the
  /// retain(N) window width (0 when unwindowed), and the table's hash.
  using ColumnarFactory = std::function<std::unique_ptr<GammaStore<T>>(
      const std::atomic<std::int64_t>*, std::int64_t,
      std::function<std::size_t(const T&)>)>;
  struct Level {
    LevelKind kind;
    std::string name;
    std::function<std::int64_t(const T&)> getter;  // Seq only
  };

  std::string name_;
  std::vector<OrderByLevel> spec_;
  std::vector<Level> levels_;
  std::function<std::size_t(const T&)> hash_;
  std::function<std::int64_t(const T&)> pk_;
  const void* pk_tag_ = nullptr;  // set by the member-pointer overload
  StoreFactory store_factory_;
  StorePreset preset_ = StorePreset::None;  // flat/columnar presets
  ColumnarFactory columnar_factory_;        // set by columns()
  std::function<void(const T&)> effect_;
  std::function<void(const T&)> retract_effect_;
  std::function<std::int64_t(const T&)> retain_epoch_of_;  // lifetime hint
  std::int64_t retain_keep_ = 0;                           // 0 = retain all
  std::int64_t retain_engine_keep_ = 0;  // retain(N): engine-epoch window
  bool counted_ = false;  // multiset Gamma: retract/upsert enabled
};

// ---------------------------------------------------------------------------

/// Type-erased table handle used by the engine loop and the viz module.
class TableBase {
 public:
  virtual ~TableBase() = default;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

  bool no_delta() const { return no_delta_; }
  bool no_gamma() const { return no_gamma_; }

  virtual const std::vector<OrderByLevel>& orderby_spec() const = 0;
  virtual std::size_t gamma_size() const = 0;
  virtual std::size_t rule_count() const = 0;
  virtual std::vector<std::string> rule_names() const = 0;
  /// Which Gamma substrate configure() actually installed (GammaStore
  /// describe()), for run logs and tuning sessions.
  virtual std::string store_describe() const = 0;

  // --- engine-internal interface -----------------------------------------

  struct RuntimeEnv {
    DeltaTree* delta = nullptr;
    sched::ForkJoinPool* pool = nullptr;  // null in sequential mode
    EdgeMatrix* edges = nullptr;
    OrderResolver* orders = nullptr;
    bool causality_checks = true;
    bool parallel = false;
    bool task_per_rule = false;  // §5.2 one task per (tuple, rule)
    /// SIMD / morsel execution switches (EngineOptions::simd/morsels),
    /// forwarded to stores as ExecHints; the JSTAR_SIMD / JSTAR_MORSELS
    /// env kill-switches are ANDed in downstream and win over these.
    bool simd = true;
    bool morsels = true;
    /// Batch-at-a-time rule emission (EngineOptions::emit_buffer): rule
    /// puts append to per-(thread, table) buffers and reach the Delta
    /// tree in one bulk append per batch.  The JSTAR_EMIT env
    /// kill-switch is ANDed in at configure() and wins over this.
    bool emit_buffer = true;
    /// Batches whose (tuples x rules) work is at or under this run their
    /// insert/fire phases inline on the coordinator (EngineOptions::
    /// inline_fire_cutoff); 0 restores the legacy always-dispatch
    /// behaviour, which bench_rule_fire uses as its baseline.
    std::int64_t inline_fire_cutoff = 16;
    /// The owning engine's epoch clock (streaming); null in unit-test
    /// harnesses that configure tables without an engine.
    const std::atomic<std::int64_t>* epoch = nullptr;
  };

  /// Called by Engine::prepare(): resolves literals, builds the store.
  virtual void configure(const RuntimeEnv& env, bool no_delta,
                         bool no_gamma) = 0;

  /// Phase A of batch processing: move this table's slice of the batch
  /// into Gamma, recording which tuples were fresh (not duplicates).
  virtual void batch_insert_phase(BatchVecBase& slice,
                                  std::vector<std::uint8_t>& keep) = 0;

  /// Phase B: run effects and fire rules for the fresh tuples, at
  /// causality timestamp `key`.
  virtual void batch_fire_phase(BatchVecBase& slice,
                                const std::vector<std::uint8_t>& keep,
                                const DeltaKey& key) = 0;

  /// Epoch-boundary GC hook, called by Engine::begin_epoch with the epoch
  /// just opened.  Tables without a retain(N) hint ignore it.
  virtual void retire_epochs(std::int64_t current_epoch) {
    (void)current_epoch;
  }

  /// COORDINATOR-ONLY, between batches (after the fire-phase join).
  /// Drains every emit buffer rules filled during the batch into the
  /// Delta tree as bulk appends.  No-op for tables without buffered
  /// emissions.
  virtual void flush_emits() {}

 protected:
  friend class Engine;

  /// Process-unique serial for emit-buffer cache validation: the
  /// thread-local (table -> buffer) cache keys on (address, serial), so
  /// a destroyed table's address being reused by a new table can never
  /// resolve to the old table's buffer.
  static std::uint64_t next_emit_serial() {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::string name_;
  int id_ = -1;
  mutable TableStats stats_;
  bool no_delta_ = false;
  bool no_gamma_ = false;
};

// ---------------------------------------------------------------------------

/// A typed table: Gamma storage + rules + optional primary-key index.
///
/// T must be equality-comparable; ordered stores additionally require
/// operator< (defaulted <=> on the struct gives you both).
template <typename T>
class Table final : public TableBase {
 public:
  using Rule = std::function<void(RuleCtx&, const T&)>;

  explicit Table(TableDecl<T> decl) : decl_(std::move(decl)) {
    name_ = decl_.name_;
    JSTAR_CHECK_MSG(static_cast<bool>(decl_.hash_),
                    "table '" + name_ + "' needs a hash function");
  }

  // --- program-facing API --------------------------------------------------

  /// Puts a tuple from within a rule.  Enforces the law of causality: the
  /// new tuple's timestamp must be >= the trigger's timestamp.  Inside a
  /// retraction cascade (ctx.retraction()) the put is sign-flipped into a
  /// retract, so an unchanged rule body re-derives its conclusions with
  /// the trigger's sign — the heart of delta-correct recomputation.
  void put(RuleCtx& ctx, const T& t) {
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    put_signed(ctx, t, ctx.sign());
  }

  /// Retracts a tuple: its multiplicity drops by one, and when the count
  /// returns to zero the tuple leaves Gamma, its secondary indexes and
  /// its pk slot, and rules re-fire with sign -1 so downstream
  /// derivations are retracted in turn.  Requires TableDecl::counted().
  /// A retract with no matching insert records a debt (count -1) that
  /// annihilates the insert when (if) it arrives — that commutativity is
  /// what keeps sharded modes confluent.  Inside a retraction cascade the
  /// sign flips back: retracting a retraction re-inserts.
  void retract(RuleCtx& ctx, const T& t) {
    stats_.retracts.fetch_add(1, std::memory_order_relaxed);
    put_signed(ctx, t, -ctx.sign());
  }

  /// Keyed overwrite: "make the row for t's primary key be exactly t".
  /// If a different tuple holds the key at processing time it is
  /// force-retracted (count to zero regardless of multiplicity, firing
  /// the -1 cascade) before t is inserted with count 1; if t itself is
  /// already the key's row this is a no-op.  Requires counted() and a
  /// primary_key.  Ill-defined inside a retraction cascade — checked.
  void upsert(RuleCtx& ctx, const T& t) {
    JSTAR_CHECK_MSG(!ctx.retraction(),
                    "upsert into '" + name_ + "' from a retraction cascade");
    stats_.upserts.fetch_add(1, std::memory_order_relaxed);
    put_signed(ctx, t, kUpsertSign);
  }

  /// Engine-internal seam for signed deltas arriving from outside rule
  /// bodies (Engine::retract/upsert, the sharded fabric's signed mail
  /// lane, stream retraction envelopes): the retract/upsert analogue of
  /// the initial-put path.  `sign` is +1 (insert), a negative count
  /// (retract), or kUpsertSign.
  void seed_signed(const T& t, std::int32_t sign) {
    if (sign == kUpsertSign) {
      stats_.upserts.fetch_add(1, std::memory_order_relaxed);
    } else if (sign < 0) {
      stats_.retracts.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.puts.fetch_add(1, std::memory_order_relaxed);
    }
    check_signed_ok(sign);
    enqueue_delta(key_of(t), t, sign);
  }

  /// Sentinel sign marking an upsert delta in batches and signed mail
  /// (never combined with counted multiplicities).
  static constexpr std::int32_t kUpsertSign =
      std::numeric_limits<std::int32_t>::min();

  /// Whether this table runs counted (multiset) Gamma semantics.
  bool counted() const { return decl_.counted_; }

  /// The tuple's causality timestamp per the orderby list.
  DeltaKey key_of(const T& t) const {
    DeltaKey k;
    for (const auto& step : key_steps_) {
      k.push_back(step.is_lit ? env_.orders->rank(step.lit_id)
                              : step.getter(t));
    }
    return k;
  }

  /// Primary-key lookup (`get uniq?`).  Requires a primary_key in the decl.
  std::optional<T> get_unique(std::int64_t pk) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    JSTAR_CHECK_MSG(has_pk_, "table '" + name_ + "' has no primary key");
    if (env_.parallel) {
      T out;
      if (pk_index_par_.lookup(pk, out)) return out;
      return std::nullopt;
    }
    auto it = pk_index_seq_.find(pk);
    if (it == pk_index_seq_.end()) return std::nullopt;
    return it->second;
  }

  /// Visits all stored tuples.  Chunk-capable stores (the flat
  /// substrates) take the templated fast path: the type-erased hop
  /// happens once per contiguous span, and the per-tuple loop below
  /// inlines `fn` — this is what find_if/count_if/none/min_by/aggregate
  /// and the planner's residual scans all ride on.
  template <typename Fn>
  void scan(Fn&& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    raw_scan(std::forward<Fn>(fn));
  }

  /// Ordered range scan [lo, hi) on stores that support it.
  template <typename Fn>
  void scan_range(const T& lo, const T& hi, Fn&& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    store_->scan_range(lo, hi,
                       std::function<void(const T&)>(std::forward<Fn>(fn)));
  }

  /// First tuple satisfying pred, if any (a `get ... ?` query).
  /// The generic overloads below are constrained away from query::Pred<T>
  /// arguments: an unconstrained forwarding template would win overload
  /// resolution for rvalue predicates and silently bypass the planner.
  template <typename Pred>
    requires(!std::is_same_v<std::decay_t<Pred>, query::Pred<T>>)
  std::optional<T> find_if(Pred&& pred) const {
    std::optional<T> out;
    scan([&](const T& t) {
      if (!out && pred(t)) out = t;
    });
    return out;
  }

  /// Planned overload: a typed predicate routes through plan_for() — pk
  /// probe, index bucket, ordered range — instead of scanning.
  std::optional<T> find_if(const query::Pred<T>& pred) const {
    std::optional<T> out;
    query(pred, [&](const T& t) {
      if (!out) out = t;
    });
    return out;
  }

  /// Predicates handed to the morsel-parallel overloads below must be
  /// pure (const-callable, no shared mutable state): past the sequential
  /// cutoff they run concurrently from pool workers.  Every predicate the
  /// engine itself emits is; JSTAR_MORSELS=off (or EngineOptions::morsels
  /// = false) pins the sequential path if a caller's is not.
  template <typename Pred>
    requires(!std::is_same_v<std::decay_t<Pred>, query::Pred<T>>)
  std::int64_t count_if(Pred&& pred) const {
    if (const auto parts = scan_morsel_parts<std::int64_t>(
            [&](std::int64_t& p, const T& t) {
              if (pred(t)) ++p;
            })) {
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      std::int64_t n = 0;
      for (const std::int64_t p : *parts) n += p;
      return n;
    }
    std::int64_t n = 0;
    scan([&](const T& t) {
      if (pred(t)) ++n;
    });
    return n;
  }

  /// Planned overload (same routing as query()).
  std::int64_t count_if(const query::Pred<T>& pred) const {
    return query_count(pred);
  }

  /// Aggregate query: folds every stored tuple into a reducer (the
  /// `get sum/min/count` aggregates of §3–§4; reducer types live in
  /// reduce/reducers.h, or any type with add()).  The §4 obligation that
  /// aggregates read only strictly-past strata is the caller's rule
  /// structure; this helper is the read itself.
  template <typename R, typename Proj>
  R aggregate(Proj&& proj, R reducer = R{}) const {
    // Morsel-parallel when the reducer can merge(): per-morsel partials
    // combine in storage order, so the result is deterministic — and
    // identical to the sequential fold for the exact (integer) reducers;
    // floating-point reductions regroup across morsel boundaries.
    if constexpr (std::is_default_constructible_v<R> &&
                  requires(R a, const R b) { a.merge(b); }) {
      if (const auto parts = scan_morsel_parts<R>(
              [&](R& p, const T& t) { p.add(proj(t)); })) {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        for (const R& p : *parts) reducer.merge(p);
        return reducer;
      }
    }
    scan([&](const T& t) { reducer.add(proj(t)); });
    return reducer;
  }

  /// `get min T(...)`: the least tuple under `less` among those matching
  /// pred, if any.
  template <typename Pred, typename Less = std::less<T>>
    requires(!std::is_same_v<std::decay_t<Pred>, query::Pred<T>>)
  std::optional<T> min_by(Pred&& pred, Less less = {}) const {
    // Morsel-parallel: per-morsel bests combine in storage order under
    // the same strict less, so ties keep the earliest stored tuple —
    // exactly what the sequential scan keeps.
    if (const auto parts = scan_morsel_parts<std::optional<T>>(
            [&](std::optional<T>& p, const T& t) {
              if (!pred(t)) return;
              if (!p || less(t, *p)) p = t;
            })) {
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      std::optional<T> best;
      for (const std::optional<T>& p : *parts) {
        if (p && (!best || less(*p, *best))) best = p;
      }
      return best;
    }
    std::optional<T> best;
    scan([&](const T& t) {
      if (!pred(t)) return;
      if (!best || less(t, *best)) best = t;
    });
    return best;
  }

  /// Planned overload: visits only the plan's access path.
  template <typename Less = std::less<T>>
  std::optional<T> min_by(const query::Pred<T>& pred, Less less = {}) const {
    std::optional<T> best;
    query(pred, [&](const T& t) {
      if (!best || less(t, *best)) best = t;
    });
    return best;
  }

  /// Negative query (§4): true iff no stored tuple matches.
  template <typename Pred>
    requires(!std::is_same_v<std::decay_t<Pred>, query::Pred<T>>)
  bool none(Pred&& pred) const {
    return !find_if(std::forward<Pred>(pred)).has_value();
  }

  /// Planned overload.
  bool none(const query::Pred<T>& pred) const {
    return !find_if(pred).has_value();
  }

  /// Planned aggregate: folds every tuple on the predicate's access path
  /// into a reducer (reduce/reducers.h, or any type with add()) — the
  /// `get sum/min/count` aggregates of §3–§4, now planner-routed.
  template <typename R, typename Proj>
  R fold(const query::Pred<T>& pred, Proj&& proj, R reducer = R{}) const {
    // A mergeable reducer on a plain full scan folds morsel-parallel —
    // the residual predicate runs inside each morsel, partials merge in
    // storage order.  Probe/range plans stay on the routed path.
    if constexpr (std::is_default_constructible_v<R> &&
                  requires(R a, const R b) { a.merge(b); }) {
      const QueryPlan plan = plan_for(pred);
      if (plan.path == AccessPath::FullScan && !plan.columnar) {
        if (const auto parts = scan_morsel_parts<R>(
                [&](R& p, const T& t) {
                  if (pred(t)) p.add(proj(t));
                })) {
          stats_.queries.fetch_add(1, std::memory_order_relaxed);
          stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
          for (const R& p : *parts) reducer.merge(p);
          return reducer;
        }
      }
    }
    query(pred, [&](const T& t) { reducer.add(proj(t)); });
    return reducer;
  }

  /// Member-pointer projection overload (more specialized, so it wins
  /// overload resolution over the generic Proj form): on a columnar full
  /// scan the projected values are gathered straight from the column —
  /// tuples are never materialised.  Falls back to the generic path for
  /// any other plan.
  template <typename R, typename M>
  R fold(const query::Pred<T>& pred, M T::*proj, R reducer = R{}) const {
    if (columnar_ops_ != nullptr) {
      const QueryPlan plan = plan_for(pred);
      if (plan.path == AccessPath::FullScan && plan.columnar) {
        const void* tag = query::field_tag(proj);
        typename ColumnarOps<T>::KernelStats ks;
        bool served = false;
        if constexpr (std::is_floating_point_v<M>) {
          served = columnar_ops_->kernel_gather_f64(
              kernel_bounds(pred), tag,
              [&](const double* v, std::size_t n) {
                for (std::size_t i = 0; i < n; ++i) {
                  reducer.add(static_cast<M>(v[i]));
                }
              },
              &ks);
        } else {
          served = columnar_ops_->kernel_gather_i64(
              kernel_bounds(pred), tag,
              [&](const std::int64_t* v, std::size_t n) {
                for (std::size_t i = 0; i < n; ++i) {
                  reducer.add(static_cast<M>(v[i]));
                }
              },
              &ks);
        }
        if (served) {
          stats_.queries.fetch_add(1, std::memory_order_relaxed);
          stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
          note_kernel(ks);
          return reducer;
        }
      }
    }
    return fold(pred, [proj](const T& t) { return t.*proj; },
                std::move(reducer));
  }

  /// Member-pointer key overload of min_by: "least tuple by this field".
  /// On a columnar full scan the argmin runs over the key column alone;
  /// ties keep the first row in store order, exactly as the scan path
  /// does.  Falls back to the comparator form for any other plan.
  template <typename M>
  std::optional<T> min_by(const query::Pred<T>& pred, M T::*key) const {
    if (columnar_ops_ != nullptr) {
      const QueryPlan plan = plan_for(pred);
      if (plan.path == AccessPath::FullScan && plan.columnar) {
        const void* tag = query::field_tag(key);
        std::optional<T> out;
        typename ColumnarOps<T>::KernelStats ks;
        if (columnar_ops_->kernel_min_row(kernel_bounds(pred), tag, &out,
                                          &ks)) {
          stats_.queries.fetch_add(1, std::memory_order_relaxed);
          stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
          note_kernel(ks);
          return out;
        }
      }
    }
    return min_by(pred, [key](const T& a, const T& b) {
      return a.*key < b.*key;
    });
  }

  bool contains(const T& t) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    return store_->contains(t);
  }

  /// Direct store access for app-specific query paths (the custom
  /// structures of §6.2/§6.4 expose richer lookups).
  GammaStore<T>* store() { return store_.get(); }
  const GammaStore<T>* store() const { return store_.get(); }

  // --- secondary indexes, range prefixes & planned queries (§1.4) ----------

  /// Declares a secondary hash index on one or more integral fields (a
  /// composite index when several are given).  Must be called before the
  /// engine starts; index maintenance then piggybacks on Gamma inserts and
  /// retention sweeps (retire_epochs).  Queries whose predicate pins every
  /// indexed field with query::eq route through the index automatically.
  template <typename... Ms>
  void add_index(Ms T::*... members) {
    static_assert(sizeof...(Ms) >= 1, "add_index needs at least one field");
    JSTAR_CHECK_MSG(store_ == nullptr,
                    "index on '" + name_ + "' added after execution started");
    std::vector<const void*> tags{query::field_tag(members)...};
    std::vector<std::function<std::int64_t(const T&)>> getters{
        std::function<std::int64_t(const T&)>([members](const T& t) {
          return static_cast<std::int64_t>(t.*members);
        })...};
    indexes_.push_back(std::make_unique<SecondaryIndex>(std::move(tags),
                                                        std::move(getters)));
  }

  /// Declares an ordered-range prefix: `members...` must be a prefix of
  /// the Gamma store's lexicographic sort order (for the defaulted <=>
  /// stores, the struct's leading fields in order).  `lower_bound` maps a
  /// vector of 1..N leading values to the *least* tuple carrying them
  /// (remaining fields at their minimum).  The planner then compiles
  /// eq-prefix + interval predicates on these fields into O(log N + k)
  /// seeks on TreeSetStore/SkipListStore instead of full scans.  Ignored
  /// (residual scan) when the configured store is unordered.
  template <typename... Ms>
  void add_range_index(
      std::function<T(const std::vector<std::int64_t>&)> lower_bound,
      Ms T::*... members) {
    static_assert(sizeof...(Ms) >= 1,
                  "add_range_index needs at least one field");
    JSTAR_CHECK_MSG(store_ == nullptr,
                    "range index on '" + name_ +
                        "' added after execution started");
    range_indexes_.push_back(RangeIndex{
        {query::field_tag(members)...},
        {std::function<std::int64_t(const T&)>([members](const T& t) {
          return static_cast<std::int64_t>(t.*members);
        })...},
        std::move(lower_bound)});
  }

  /// The planner-visible description of this table's access structures
  /// (the cached copy once configure() froze the declarations).
  PlannerCatalog planner_catalog() const {
    return store_ != nullptr ? catalog_ : build_planner_catalog();
  }

  /// Compiles (but does not run) the access path `query(pred, ...)` would
  /// take — the `EXPLAIN` of this engine.
  QueryPlan plan_for(const query::Pred<T>& pred) const {
    if (store_ != nullptr) return plan_query(catalog_, pred);
    return plan_query(build_planner_catalog(), pred);
  }

  /// Runs `fn` over every stored tuple matching `pred`, executing the
  /// compiled plan: a contradiction touches nothing, a pk-pinning
  /// predicate probes the pk index, an eq-covered hash index visits one
  /// bucket, an ordered eq-prefix/interval seeks the store, and anything
  /// else scans.  Results are identical whichever path runs — the §1.4
  /// claim that access-path choice cannot change program meaning — because
  /// the full predicate is always applied as a residual filter.
  void query(const query::Pred<T>& pred,
             const std::function<void(const T&)>& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    execute_plan(plan_for(pred), pred, fn);
  }

  /// Count of tuples matching pred, routed like query().  On a columnar
  /// full scan the count never materialises a tuple: the kernel counts
  /// selected rows straight off the column masks.
  std::int64_t query_count(const query::Pred<T>& pred) const {
    const QueryPlan plan = plan_for(pred);
    if (plan.path == AccessPath::FullScan && plan.columnar &&
        columnar_ops_ != nullptr) {
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
      const auto ks = columnar_ops_->kernel_count(kernel_bounds(pred));
      note_kernel(ks);
      return ks.selected;
    }
    if (plan.path == AccessPath::FullScan && !plan.columnar) {
      // Plain full-scan count: morsel-parallel partial counts, summed in
      // storage order (residual predicate evaluated inside each morsel).
      if (const auto parts = scan_morsel_parts<std::int64_t>(
              [&](std::int64_t& p, const T& t) {
                if (pred(t)) ++p;
              })) {
        stats_.queries.fetch_add(1, std::memory_order_relaxed);
        stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
        std::int64_t n = 0;
        for (const std::int64_t p : *parts) n += p;
        return n;
      }
    }
    std::int64_t n = 0;
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    execute_plan(plan, pred, [&](const T&) { ++n; });
    return n;
  }

  std::size_t index_count() const { return indexes_.size(); }
  std::size_t range_index_count() const { return range_indexes_.size(); }

  void add_rule(std::string rule_name, Rule fn) {
    rules_.push_back({std::move(rule_name), std::move(fn)});
  }

  // --- TableBase implementation -------------------------------------------

  const std::vector<OrderByLevel>& orderby_spec() const override {
    return decl_.spec_;
  }
  std::size_t gamma_size() const override {
    return store_ ? store_->size() : 0;
  }
  std::string store_describe() const override {
    return store_ ? store_->describe() : "unconfigured";
  }
  std::size_t rule_count() const override { return rules_.size(); }
  std::vector<std::string> rule_names() const override {
    std::vector<std::string> out;
    out.reserve(rules_.size());
    for (const auto& r : rules_) out.push_back(r.name);
    return out;
  }

  void configure(const RuntimeEnv& env, bool no_delta,
                 bool no_gamma) override {
    env_ = env;
    no_delta_ = no_delta;
    no_gamma_ = no_gamma;
    has_pk_ = static_cast<bool>(decl_.pk_) && !no_gamma;
    // Batch-at-a-time emission: the env kill-switch is ANDed in so
    // JSTAR_EMIT=off always wins over EngineOptions::emit_buffer.
    // -noDelta tables bypass the Delta tree entirely, so there is
    // nothing to buffer for them.
    emit_enabled_ = env_.emit_buffer && simd::emit_env_on() && !no_delta;
    // Resolve orderby levels into key-building steps.  At least one
    // comparable (lit/seq) level is required: an all-par orderby would give
    // every tuple the empty timestamp, which is reserved for initial puts.
    key_steps_.clear();
    for (const auto& level : decl_.levels_) {
      switch (level.kind) {
        case TableDecl<T>::LevelKind::Lit:
          key_steps_.push_back({true, env_.orders->literal(level.name), {}});
          break;
        case TableDecl<T>::LevelKind::Seq:
          key_steps_.push_back({false, 0, level.getter});
          break;
        case TableDecl<T>::LevelKind::Par:
          break;  // excluded from the comparable key
      }
    }
    JSTAR_CHECK_MSG(!key_steps_.empty(),
                    "table '" + name_ +
                        "' needs at least one lit/seq orderby level");
    JSTAR_CHECK_MSG(
        decl_.retain_engine_keep_ < 1 || decl_.retain_keep_ < 1,
        "table '" + name_ +
            "' sets both retain(N) and retain_epochs — pick one window");
    // Build the Gamma store per strategy (§1.4 late commitment).
    JSTAR_CHECK_MSG(
        !(decl_.preset_ != TableDecl<T>::StorePreset::None &&
          static_cast<bool>(decl_.store_factory_)),
        "table '" + name_ +
            "' sets both a flat-store preset and a store_factory");
    // Tuple-carried windows (retain_epochs) need the bucketed epoch
    // store; only the engine-clock retain(N) window composes with the
    // flat tier.  Fail rather than silently dropping the preset.
    JSTAR_CHECK_MSG(
        !(decl_.preset_ != TableDecl<T>::StorePreset::None &&
          decl_.retain_keep_ >= 1),
        "table '" + name_ +
            "' combines a flat-store preset with retain_epochs — "
            "tuple-carried windows need the epoch-bucketed store");
    if (decl_.counted_) {
      JSTAR_CHECK_MSG(!no_gamma, "counted table '" + name_ +
                                     "' cannot run -noGamma (nothing to "
                                     "retract from)");
      JSTAR_CHECK_MSG(!no_delta, "counted table '" + name_ +
                                     "' cannot run -noDelta (signed deltas "
                                     "need batch combining)");
      JSTAR_CHECK_MSG(decl_.retain_keep_ < 1,
                      "counted table '" + name_ +
                          "' cannot use retain_epochs — tuple-carried "
                          "windows retire mid-run; use retain(N)");
      if (count_shards_.empty()) {
        count_shards_.reserve(kCountShards);
        for (std::size_t i = 0; i < kCountShards; ++i) {
          count_shards_.push_back(std::make_unique<CountShard>(this));
        }
      }
    }
    window_store_ = nullptr;
    retiring_store_ = nullptr;
    tuple_epoch_window_ = false;
    if (no_gamma) {
      store_ = std::make_unique<NullStore<T>>();
    } else if (decl_.retain_engine_keep_ >= 1 &&
               decl_.preset_ == TableDecl<T>::StorePreset::FlatOrdered) {
      // retain(N) over the flat substrate: tuples are tagged with the
      // engine epoch clock on arrival and begin_epoch() compacts the
      // arrays in place (see retire_epochs below).  Passing the window
      // width also arms insert-driven retirement, so straggler semantics
      // match the bucketed EpochWindowStore even when the clock advances
      // without a begin_epoch() sweep.
      auto owned = std::make_unique<FlatOrderedStore<T, FnHash<T>>>(
          env.epoch, FnHash<T>{decl_.hash_}, decl_.retain_engine_keep_);
      window_store_ = owned.get();
      retiring_store_ = owned.get();
      store_ = std::move(owned);
    } else if (decl_.preset_ == TableDecl<T>::StorePreset::Columnar) {
      // columns(...): the SoA substrate; with retain(N) it epoch-tags
      // rows and compacts every column in place at epoch boundaries.
      const bool windowed = decl_.retain_engine_keep_ >= 1;
      auto owned = decl_.columnar_factory_(
          env.epoch, decl_.retain_engine_keep_, decl_.hash_);
      if (windowed) {
        auto* retiring = dynamic_cast<RetiringStore<T>*>(owned.get());
        window_store_ = retiring;
        retiring_store_ = retiring;
      }
      store_ = std::move(owned);
    } else if (decl_.retain_engine_keep_ >= 1) {
      // retain(N): window over the *engine* epoch clock — every tuple's
      // epoch is the epoch it arrived in, and begin_epoch() retires the
      // buckets that fell out of the window (see retire_epochs below).
      // A flat_hash_store() preset lands here too: open addressing
      // cannot drop whole epochs without a rebuild, so the bucketed
      // window serves windowed tables instead.
      auto owned = std::make_unique<EpochWindowStore<T, FnHash<T>>>(
          [clock = env.epoch](const T&) {
            return clock != nullptr
                       ? clock->load(std::memory_order_relaxed)
                       : 0;
          },
          decl_.retain_engine_keep_, FnHash<T>{decl_.hash_},
          /*clock_epochs=*/true);
      window_store_ = owned.get();
      retiring_store_ = owned.get();
      store_ = std::move(owned);
    } else if (decl_.retain_keep_ >= 1) {
      auto owned = std::make_unique<EpochWindowStore<T, FnHash<T>>>(
          decl_.retain_epoch_of_, decl_.retain_keep_, FnHash<T>{decl_.hash_});
      retiring_store_ = owned.get();
      tuple_epoch_window_ = true;
      store_ = std::move(owned);
    } else if (decl_.preset_ == TableDecl<T>::StorePreset::FlatOrdered) {
      store_ = std::make_unique<FlatOrderedStore<T, FnHash<T>>>(
          FnHash<T>{decl_.hash_});
    } else if (decl_.preset_ == TableDecl<T>::StorePreset::FlatHash) {
      store_ = std::make_unique<FlatHashStore<T, FnHash<T>>>(
          FnHash<T>{decl_.hash_});
    } else if (decl_.store_factory_) {
      store_ = decl_.store_factory_(env.parallel);
    } else if (env.parallel) {
      store_ = std::make_unique<SkipListStore<T>>();
    } else {
      store_ = std::make_unique<TreeSetStore<T>>();
    }
    // Kernel interface, when the configured store exposes one (the
    // columnar preset, or a store_factory returning a ColumnStore).
    columnar_ops_ = dynamic_cast<ColumnarOps<T>*>(store_.get());
    // Execution hints: the engine's pool for morsel-parallel kernels and
    // scans, plus the SIMD/morsel switches (env kill-switches are ANDed
    // in by the stores, so JSTAR_SIMD/JSTAR_MORSELS=off always wins).
    store_->set_exec_hints(ExecHints{env_.pool, env_.simd, env_.morsels});
    JSTAR_CHECK_MSG(!decl_.counted_ || store_->erasable(),
                    "counted table '" + name_ + "': store '" +
                        store_->describe() + "' cannot erase tuples");
    // Epoch-aware index maintenance: whatever the window retires is swept
    // from the secondary indexes too, so "indexes never forget" is no
    // longer true — routed and scanned queries see the same live set.
    if (retiring_store_ != nullptr) {
      retiring_store_->set_retire_listener(
          [this](const T& t) { retire_from_indexes(t); });
    }
    // Declarations are frozen from here on (add_index/add_range_index
    // check store_ == nullptr), so the planner catalog can be built once
    // instead of per query — query() sits in hot rule bodies.
    catalog_ = build_planner_catalog();
  }

  void retire_epochs(std::int64_t current_epoch) override {
    if (window_store_ == nullptr) return;
    const std::int64_t retired = window_store_->retire_up_to(
        current_epoch - decl_.retain_engine_keep_);
    stats_.gamma_retired.fetch_add(retired, std::memory_order_relaxed);
  }

  void batch_insert_phase(BatchVecBase& slice,
                          std::vector<std::uint8_t>& keep) override {
    auto& bv = static_cast<BatchVec&>(slice);
    const std::int64_t n = static_cast<std::int64_t>(bv.items.size());
    keep.assign(static_cast<std::size_t>(n), kKeepNone);
    if (decl_.counted_) bv.displaced.resize(bv.items.size());
    auto insert_one = [&](std::int64_t i) {
      const auto u = static_cast<std::size_t>(i);
      if (!decl_.counted_) {
        keep[u] = insert_gamma(bv.items[u]) ? kKeepInsert : kKeepNone;
        return;
      }
      const std::int32_t s = bv.sign[u];
      if (s == kUpsertSign) {
        keep[u] = upsert_gamma(bv.items[u], &bv.displaced[u]);
      } else if (s != 0) {
        // s == 0 means the tuple's inserts and retracts annihilated
        // inside the batch — no Gamma mutation, no firing.
        keep[u] = counted_apply(bv.items[u], s);
      }
    };
    // Same adaptive cutoff as the fire phase: sub-threshold batches
    // insert inline on the coordinator instead of paying a pool
    // round-trip per hop of a deep chain.  (Cutoff 0 keeps the legacy
    // n > 1 dispatch threshold.)
    if (env_.pool != nullptr &&
        n > std::max<std::int64_t>(env_.inline_fire_cutoff, 1)) {
      env_.pool->for_each_index(n, insert_one);
    } else {
      for (std::int64_t i = 0; i < n; ++i) insert_one(i);
    }
  }

  void batch_fire_phase(BatchVecBase& slice,
                        const std::vector<std::uint8_t>& keep,
                        const DeltaKey& key) override {
    auto& bv = static_cast<BatchVec&>(slice);
    const std::int64_t n = static_cast<std::int64_t>(bv.items.size());
    if (n == 0) return;
    // Adaptive dispatch: a pool round-trip (task enqueue + worker wake +
    // join) costs far more than firing a handful of rules, so batches
    // whose total work (tuples x rules) sits under the cutoff run right
    // here on the coordinator — the 1-to-few-tuple batches of deep
    // chain workloads (dijkstra) stop paying a fork/join cycle per hop.
    const auto rules = static_cast<std::int64_t>(rules_.size());
    const std::int64_t work = n * std::max<std::int64_t>(1, rules);
    const bool inline_fire =
        env_.pool == nullptr || work <= env_.inline_fire_cutoff;
    if (inline_fire && env_.pool != nullptr) {
      stats_.inline_batches.fetch_add(1, std::memory_order_relaxed);
    }
    if (!inline_fire && env_.task_per_rule && rules > 1 &&
        !decl_.counted_) {
      // §5.2 fine-grained strategy: one task per (tuple, rule) pair.
      // Effects run in the rule-0 task so they still happen exactly once
      // per tuple.  Counted tables skip this strategy: an upsert fires
      // two cascades per item (displaced then replacement), which the
      // flat (tuple, rule) indexing cannot express — they use the
      // per-tuple tasks below instead.  The RuleCtx is hoisted out of
      // the inner loop: it is immutable (every accessor const), so one
      // instance per batch is safely shared by all of its tasks.
      RuleCtx ctx(key, id_, env_.edges, current_epoch());
      env_.pool->for_each_index(
          n * rules,
          [&](std::int64_t idx) {
            const std::int64_t i = idx / rules;
            const auto r = static_cast<std::size_t>(idx % rules);
            if (!keep[static_cast<std::size_t>(i)]) return;
            const T& t = bv.items[static_cast<std::size_t>(i)];
            if (r == 0 && decl_.effect_) decl_.effect_(t);
            stats_.fires.fetch_add(1, std::memory_order_relaxed);
            rules_[r].fn(ctx, t);
          },
          /*grain=*/1);
      return;
    }
    auto fire_one = [&](std::int64_t i) {
      const auto u = static_cast<std::size_t>(i);
      switch (keep[u]) {
        case kKeepInsert:
          fire_tuple(key, bv.items[u]);
          break;
        case kKeepRetract:
          fire_tuple(key, bv.items[u], -1);
          break;
        case kKeepUpsert:
          // The displaced tuple's downstream cone is retracted before
          // the replacement's is derived, both at this batch's
          // timestamp.
          fire_tuple(key, bv.displaced[u], -1);
          fire_tuple(key, bv.items[u]);
          break;
        default:
          break;
      }
    };
    if (!inline_fire) {
      // The paper's all-minimums strategy (§5), morsel-grained: spans of
      // tuples per task instead of grain=1, so huge batches (matmul
      // rows, pvwatts hours) stop paying a task spawn per tuple while
      // small-enough spans keep every worker fed.
      env_.pool->for_each_index(n, fire_one, fire_grain(n));
    } else {
      for (std::int64_t i = 0; i < n; ++i) fire_one(i);
    }
  }

  void flush_emits() override {
    if (!emit_dirty_.load(std::memory_order_relaxed)) return;
    emit_dirty_.store(false, std::memory_order_relaxed);
    // Gather in deterministic order: worker-slot hint, then registration
    // order.  Sequential mode has exactly one buffer, so the gathered
    // order is the exact put order — making the flush bit-identical to
    // direct enqueues; in parallel mode the within-batch put order is
    // already schedule-dependent on the direct path and the batch
    // combining semantics (append_one) are order-insensitive.
    std::vector<EmitBuffer*> bufs;
    {
      std::lock_guard<std::mutex> lk(emit_mu_);
      bufs.reserve(emit_buffers_.size());
      for (const auto& b : emit_buffers_) {
        if (!b->recs.empty()) bufs.push_back(b.get());
      }
    }
    if (bufs.empty()) return;
    std::sort(bufs.begin(), bufs.end(),
              [](const EmitBuffer* a, const EmitBuffer* b) {
                return a->slot != b->slot ? a->slot < b->slot
                                          : a->seq < b->seq;
              });
    // Index the records in place (one pointer each — the records
    // themselves stay in their buffers until the bulk append below has
    // consumed them; copying them out here would cost more than the
    // direct path's per-put tree probe saved).
    flush_ptrs_.clear();
    std::size_t total = 0;
    for (const EmitBuffer* b : bufs) total += b->recs.size();
    flush_ptrs_.reserve(total);
    // Group records by key in first-appearance order.  Grouping, not
    // sorting: O(n) against O(n log n), and within-key order stays the
    // gather order (sequential-mode exactness again).  Rule batches emit
    // long runs of one causality key (a stratum derives into the next),
    // so the previous record's group is memoized and the ordered map is
    // only probed on key transitions.
    flush_groups_.clear();
    flush_next_.assign(total, -1);
    std::map<DeltaKey, std::size_t, DeltaKeyLess> group_of;
    std::size_t last_group = 0;
    const DeltaKey* last_key = nullptr;
    for (EmitBuffer* b : bufs) {
      for (const EmitRecord& r : b->recs) {
        const auto ii = static_cast<std::ptrdiff_t>(flush_ptrs_.size());
        flush_ptrs_.push_back(&r);
        if (last_key == nullptr || !(*last_key == r.key)) {
          const auto [it, fresh] =
              group_of.try_emplace(r.key, flush_groups_.size());
          if (fresh) flush_groups_.push_back(EmitGroup{ii, -1, 0});
          last_group = it->second;
          last_key = &r.key;
        }
        EmitGroup& g = flush_groups_[last_group];
        if (g.count > 0) {
          flush_next_[static_cast<std::size_t>(g.tail)] = ii;
        }
        g.tail = ii;
        ++g.count;
      }
    }
    // One bulk append per distinct key: the tree resolves every node in
    // one call (the striped backend locks each touched stripe once), and
    // flush_visit locks each BatchNode once, reserves its slice once,
    // and funnels the group's records through append_one — one lock and
    // one dedup-set rehash per flush instead of one per tuple.
    flush_keys_.clear();
    flush_keys_.reserve(flush_groups_.size());
    for (const EmitGroup& g : flush_groups_) {
      flush_keys_.push_back(
          flush_ptrs_[static_cast<std::size_t>(g.head)]->key);
    }
    env_.delta->get_or_insert_batch(
        flush_keys_.data(), flush_keys_.size(),
        [](void* self, std::size_t gi, BatchNode& node) {
          static_cast<Table*>(self)->flush_visit(gi, node);
        },
        this);
    stats_.emit_flushes.fetch_add(1, std::memory_order_relaxed);
    flush_ptrs_.clear();
    for (EmitBuffer* b : bufs) b->recs.clear();  // keeps capacity
  }

 private:
  friend class Engine;

  struct NamedRule {
    std::string name;
    Rule fn;
  };

  struct HashAdapter {
    const Table* table;
    std::size_t operator()(const T& t) const { return table->decl_.hash_(t); }
  };

  struct BatchVec final : public BatchVecBase {
    explicit BatchVec(const Table* table)
        : seen(8, HashAdapter{table}) {}
    std::vector<T> items;
    // Net signed multiplicity per item (parallel to items).  Counted
    // tables accumulate the +1/-1 deltas of one tuple into a single
    // entry, so an insert and its retract meeting in the same batch
    // annihilate before phase A even runs; kUpsertSign marks an upsert
    // delta.  Non-counted tables only ever hold +1.  `displaced` is
    // sized by phase A when the batch carries upserts: slot i receives
    // the tuple upsert i displaced, for phase B's retraction cascade.
    std::vector<std::int32_t> sign;
    std::vector<T> displaced;
    std::unordered_map<T, std::size_t, HashAdapter> seen;  // tuple -> index
    std::size_t count() const override { return items.size(); }
  };

  // --- batch-at-a-time emission ------------------------------------------

  /// One buffered rule put: everything enqueue_delta needs, captured at
  /// put time (the causality check already ran).
  struct EmitRecord {
    DeltaKey key;
    T tuple;
    std::int32_t sign;
  };

  /// A per-(thread, table) append-only buffer.  `slot` is the emitting
  /// thread's worker index at registration (-1 for non-workers) and
  /// `seq` its registration order — together the deterministic flush
  /// order.
  struct EmitBuffer {
    int slot = -1;
    std::uint64_t seq = 0;
    std::vector<EmitRecord> recs;
  };

  /// One distinct DeltaKey's slice of a flush: a chain (head/tail into
  /// flush_next_, indices into flush_ptrs_) over the in-place records, in
  /// first-appearance order.  The key itself lives in the head record.
  struct EmitGroup {
    std::ptrdiff_t head;
    std::ptrdiff_t tail;
    std::size_t count;
  };

  static constexpr std::size_t kEmitCacheSlots = 8;

  /// The calling thread's buffer for this table, registering one on
  /// first use.  Keyed by (address, serial) in a small thread_local
  /// cache: joining threads *help* — a shard coordinator can steal and
  /// execute another engine's fire tasks — so two non-worker threads can
  /// emit into one table concurrently, and a plain worker-index slot
  /// array would collide them.  A cache eviction just re-registers a new
  /// buffer; the orphan keeps being flushed and merely stops growing.
  EmitBuffer& local_emit_buffer() {
    struct CacheEntry {
      const void* table = nullptr;
      std::uint64_t serial = 0;
      EmitBuffer* buf = nullptr;
    };
    thread_local CacheEntry cache[kEmitCacheSlots];
    thread_local std::size_t evict = 0;
    for (CacheEntry& e : cache) {
      if (e.table == this && e.serial == emit_serial_) return *e.buf;
    }
    auto owned = std::make_unique<EmitBuffer>();
    owned->slot = sched::ForkJoinPool::current_worker_index();
    EmitBuffer* buf = owned.get();
    {
      std::lock_guard<std::mutex> lk(emit_mu_);
      owned->seq = emit_buffers_.size();
      emit_buffers_.push_back(std::move(owned));
    }
    cache[evict] = CacheEntry{this, emit_serial_, buf};
    evict = (evict + 1) % kEmitCacheSlots;
    return *buf;
  }

  /// Appends one flush group into its (bulk-resolved) BatchNode.
  void flush_visit(std::size_t gi, BatchNode& node) {
    const EmitGroup& g = flush_groups_[gi];
    std::lock_guard<std::mutex> lk(node.mu);
    BatchVec& bv = slice_of(node);
    bv.items.reserve(bv.items.size() + g.count);
    bv.sign.reserve(bv.sign.size() + g.count);
    bv.seen.reserve(bv.seen.size() + g.count);
    for (std::ptrdiff_t i = g.head; i >= 0;
         i = flush_next_[static_cast<std::size_t>(i)]) {
      const EmitRecord& r = *flush_ptrs_[static_cast<std::size_t>(i)];
      append_one(bv, r.tuple, r.sign);
    }
  }

  /// Morsel-span sizing for the fire loop (the jstar::morsel idiom):
  /// ~8 spans per worker like for_each_index's auto grain, capped at one
  /// morsel of rows so enormous batches still yield stealable spans.
  std::int64_t fire_grain(std::int64_t n) const {
    const auto p = static_cast<std::int64_t>(env_.pool->size());
    const std::int64_t span = std::max<std::int64_t>(1, n / (p * 8));
    return std::min<std::int64_t>(span,
                                  static_cast<std::int64_t>(morsel::kRows));
  }

  struct KeyStep {
    bool is_lit;
    int lit_id;
    std::function<std::int64_t(const T&)> getter;
  };

  /// Striped hash multimap from an integral key to tuples; safe for
  /// concurrent inserts from parallel rule tasks.  Composite indexes mix
  /// the field values into one key — a mix collision only costs extra
  /// residual-filter work, never a wrong result, because query() always
  /// re-applies the full predicate.
  struct SecondaryIndex {
    SecondaryIndex(std::vector<const void*> ts,
                   std::vector<std::function<std::int64_t(const T&)>> gs)
        : tags(std::move(ts)), getters(std::move(gs)), shards(16) {}

    static std::int64_t mix(std::int64_t h, std::int64_t v) {
      std::uint64_t z = static_cast<std::uint64_t>(h) ^
                        (static_cast<std::uint64_t>(v) +
                         0x9e3779b97f4a7c15ULL +
                         (static_cast<std::uint64_t>(h) << 6) +
                         (static_cast<std::uint64_t>(h) >> 2));
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::int64_t>(z ^ (z >> 27));
    }

    std::int64_t key_of(const T& t) const {
      if (getters.size() == 1) return getters[0](t);
      std::int64_t h = 0;
      for (const auto& g : getters) h = mix(h, g(t));
      return h;
    }
    std::int64_t key_from_values(const std::vector<std::int64_t>& vs) const {
      if (vs.size() == 1) return vs[0];
      std::int64_t h = 0;
      for (const std::int64_t v : vs) h = mix(h, v);
      return h;
    }

    void insert(const T& t) {
      const std::int64_t key = key_of(t);
      Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      s.map.emplace(key, t);
    }
    /// Removes one entry equal to `t`, if present; returns whether an
    /// entry was removed (retention sweeps count these).
    bool erase(const T& t) {
      const std::int64_t key = key_of(t);
      Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      auto [lo, hi] = s.map.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == t) {
          s.map.erase(it);
          return true;
        }
      }
      return false;
    }
    void lookup(std::int64_t key,
                const std::function<void(const T&)>& fn) const {
      const Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      auto [lo, hi] = s.map.equal_range(key);
      for (auto it = lo; it != hi; ++it) fn(it->second);
    }

    std::vector<const void*> tags;
    std::vector<std::function<std::int64_t(const T&)>> getters;

   private:
    struct Shard {
      mutable std::mutex mu;
      std::unordered_multimap<std::int64_t, T> map;
    };
    Shard& shard_for(std::int64_t key) {
      return shards[static_cast<std::size_t>(key) % shards.size()];
    }
    const Shard& shard_for(std::int64_t key) const {
      return shards[static_cast<std::size_t>(key) % shards.size()];
    }
    mutable std::vector<Shard> shards;
  };

  /// One declared ordered-range prefix (see add_range_index).  The
  /// getters let execute_range verify that the factory represented a
  /// requested bound exactly (a value outside a narrower field type's
  /// range truncates — detected as a failed round trip).
  struct RangeIndex {
    std::vector<const void*> tags;
    std::vector<std::function<std::int64_t(const T&)>> getters;
    std::function<T(const std::vector<std::int64_t>&)> lower_bound;

    bool bound_exact(const T& t,
                     const std::vector<std::int64_t>& values) const {
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (getters[i](t) != values[i]) return false;
      }
      return true;
    }
  };

  /// Shared body of put/retract/upsert: causality check, dataflow edge,
  /// and routing of the signed delta.
  void put_signed(RuleCtx& ctx, const T& t, std::int32_t sign) {
    check_signed_ok(sign);
    DeltaKey k = key_of(t);
    if (env_.causality_checks && !ctx.initial()) {
      if ((k <=> ctx.now()) == std::strong_ordering::less) {
        throw CausalityViolation(
            "rule fired at " + jstar::to_string(ctx.now()) +
            " put a tuple into the past at " + jstar::to_string(k) +
            " of table " + name_);
      }
    }
    if (ctx.edges() != nullptr) ctx.edges()->record(ctx.from_table(), id_);
    if (no_delta_) {
      // Counted tables reject -noDelta at configure time, so only +1
      // deltas can reach the inline path.
      deliver_now(k, t);
    } else if (emit_enabled_) {
      // Batch-at-a-time emission: the causality check above ran eagerly
      // (same throw point as the direct path), but the Delta tree is not
      // touched here — the record lands in this thread's private buffer
      // and reaches the tree in one bulk append at flush_emits().
      EmitBuffer& buf = local_emit_buffer();
      buf.recs.push_back(EmitRecord{std::move(k), t, sign});
      emit_dirty_.store(true, std::memory_order_relaxed);
      stats_.emit_buffered.fetch_add(1, std::memory_order_relaxed);
    } else {
      enqueue_delta(k, t, sign);
    }
  }

  void check_signed_ok(std::int32_t sign) const {
    JSTAR_CHECK_MSG(
        sign == 1 || decl_.counted_,
        "table '" + name_ + "' received a signed delta (retract/upsert or "
        "a retraction cascade) but is not declared counted()");
    JSTAR_CHECK_MSG(sign != kUpsertSign || static_cast<bool>(decl_.pk_),
                    "upsert into '" + name_ + "' needs a primary key");
  }

  void enqueue_delta(const DeltaKey& k, const T& t, std::int32_t sign = 1) {
    BatchNode& node = env_.delta->get_or_insert(k);
    std::lock_guard<std::mutex> lk(node.mu);
    append_one(slice_of(node), t, sign);
  }

  /// This table's slice of `node` (node.mu held by the caller), created
  /// lazily.  Shared by the per-tuple enqueue and the bulk emit flush.
  BatchVec& slice_of(BatchNode& node) {
    if (node.per_table.size() <= static_cast<std::size_t>(id_)) {
      node.per_table.resize(static_cast<std::size_t>(id_) + 1);
    }
    auto& slot = node.per_table[static_cast<std::size_t>(id_)];
    if (!slot) slot = std::make_unique<BatchVec>(this);
    return static_cast<BatchVec&>(*slot);
  }

  /// Appends one signed tuple into slice `bv` (node.mu held by the
  /// caller): set-semantics dedup for plain tables, signed multiplicity
  /// accumulation and upsert supersede for counted ones.  The single
  /// definition of batch-combining semantics — the direct put path and
  /// the emit flush both land here, which is what makes them
  /// bit-identical.
  void append_one(BatchVec& bv, const T& t, std::int32_t sign) {
    const auto [it, fresh] = bv.seen.emplace(t, bv.items.size());
    if (fresh) {
      bv.items.push_back(t);
      bv.sign.push_back(sign);
      stats_.delta_inserts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::int32_t& s = bv.sign[it->second];
    if (decl_.counted_ && sign != kUpsertSign && s != kUpsertSign) {
      // Counted tables accumulate signed multiplicity instead of
      // deduping: an insert and a retract of the same tuple meeting in
      // one batch net to zero and phase A skips the tuple entirely.
      s += sign;
      stats_.delta_inserts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (decl_.counted_ && sign == kUpsertSign) {
      // An upsert supersedes this batch's earlier counted deltas for the
      // same tuple — it forces the key's row (and count) anyway.
      s = kUpsertSign;
      stats_.delta_inserts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stats_.delta_dups.fetch_add(1, std::memory_order_relaxed);
  }

  /// -noDelta path (§5.1): straight into Gamma, fire rules inline.
  void deliver_now(const DeltaKey& k, const T& t) {
    if (insert_gamma(t)) fire_tuple(k, t);
  }

  /// Returns true when the tuple is fresh (not a set-semantics duplicate
  /// and not a primary-key conflict).
  bool insert_gamma(const T& t) {
    if (has_pk_) {
      const std::int64_t pk = decl_.pk_(t);
      bool fresh = false;
      if (env_.parallel) {
        pk_index_par_.get_or_insert(pk, [&] {
          fresh = true;
          return t;
        });
      } else {
        fresh = pk_index_seq_.emplace(pk, t).second;
      }
      if (!fresh) {
        // Either an exact duplicate (set semantics) or a conflicting tuple
        // (invariant violation the SMT layer would flag statically).
        const std::optional<T> existing = peek_pk(pk);
        if (existing && !(*existing == t)) {
          stats_.pk_conflicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.gamma_dups.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      store_->insert(t);
      stats_.gamma_inserts.fetch_add(1, std::memory_order_relaxed);
      update_indexes(t);
      return true;
    }
    if (!store_->insert(t)) {
      stats_.gamma_dups.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.gamma_inserts.fetch_add(1, std::memory_order_relaxed);
    // -noGamma: the NullStore accepted the tuple but retained nothing;
    // count the pass-through so the table's throughput stays visible.
    if (no_gamma_) {
      stats_.gamma_passed_through.fetch_add(1, std::memory_order_relaxed);
    }
    update_indexes(t);
    return true;
  }

  void update_indexes(const T& t) {
    if (indexes_.empty()) return;
    // A -noGamma store retains nothing and a retention window drops
    // stragglers on arrival; in both cases the tuple never reached Gamma,
    // and the indexes must mirror the store exactly.
    if (no_gamma_) return;
    // Only tuple-carried epoch windows (retain_epochs) need the liveness
    // guard: their insert path can drop stragglers and retire buckets
    // mid-run.  Clock windows (retain) advance only in begin_epoch(),
    // between runs, so inserts there can never race a retirement.
    if (tuple_epoch_window_) {
      if (!store_->contains(t)) return;
      for (const auto& idx : indexes_) idx->insert(t);
      // A concurrent insert can retire t's bucket between the check above
      // and our index insert — the retire listener would find nothing to
      // erase.  The recheck closes that window: whichever of (listener
      // erase, this erase) runs second actually removes the entry.
      if (!store_->contains(t)) {
        for (const auto& idx : indexes_) idx->erase(t);
      }
      return;
    }
    for (const auto& idx : indexes_) idx->insert(t);
  }

  // --- counted (multiset) Gamma: retract/upsert machinery ------------------

  // Phase-A keep codes (per batch item), consumed by batch_fire_phase.
  static constexpr std::uint8_t kKeepNone = 0;     // no presence transition
  static constexpr std::uint8_t kKeepInsert = 1;   // became present: sign +1
  static constexpr std::uint8_t kKeepRetract = 2;  // left Gamma: sign -1
  static constexpr std::uint8_t kKeepUpsert = 3;   // displaced + inserted

  /// The side count map holds a tuple's multiplicity ONLY when it is
  /// interesting: >= 2 (stored, with spare multiplicity) or <= -1 (a
  /// retract-before-insert debt).  Count 1 is represented by store
  /// membership alone and count 0 by absence, so insert-only workloads
  /// never touch the map and its size is bounded by the number of
  /// over-inserted or indebted tuples, not by the table.  Batch items
  /// are distinct (the seen map dedups), so per-tuple transitions never
  /// race even under parallel phase A; the shard mutex only guards map
  /// structure against different tuples sharing a shard.
  struct CountShard {
    explicit CountShard(const Table* t) : map(8, HashAdapter{t}) {}
    std::mutex mu;
    std::unordered_map<T, std::int64_t, HashAdapter> map;
  };
  static constexpr std::size_t kCountShards = 16;

  CountShard& count_shard(const T& t) const {
    return *count_shards_[decl_.hash_(t) % kCountShards];
  }

  std::int64_t load_count(const T& t) const {
    {
      CountShard& s = count_shard(t);
      std::lock_guard<std::mutex> lk(s.mu);
      const auto it = s.map.find(t);
      if (it != s.map.end()) return it->second;
    }
    return store_->contains(t) ? 1 : 0;
  }

  void store_count(const T& t, std::int64_t c) {
    CountShard& s = count_shard(t);
    std::lock_guard<std::mutex> lk(s.mu);
    if (c == 0 || c == 1) {
      s.map.erase(t);
    } else {
      s.map[t] = c;
    }
  }

  void clear_count(const T& t) {
    CountShard& s = count_shard(t);
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.erase(t);
  }

  /// Applies a net signed multiplicity to one tuple and performs whatever
  /// Gamma/pk/index mutation its presence transition demands.  Returns
  /// the phase-B keep code.
  std::uint8_t counted_apply(const T& t, std::int64_t s) {
    const std::int64_t before = load_count(t);
    const std::int64_t after = before + s;
    if (s > 0) {
      if (before <= 0 && after >= 1) {
        // 0 (or a debt) -> positive: the tuple becomes present.
        if (!insert_gamma(t)) {
          // A pk conflict blocks presence entirely; the insert is
          // dropped rather than banking multiplicity for a tuple the
          // invariant rejects, and any debt stays on the books.
          return kKeepNone;
        }
        if (before < 0) {
          stats_.annihilated.fetch_add(-before, std::memory_order_relaxed);
        }
        store_count(t, after);
        return kKeepInsert;
      }
      if (after <= 0) {
        // Fully consumed by an outstanding debt: no firing.
        stats_.annihilated.fetch_add(s, std::memory_order_relaxed);
        store_count(t, after);
        return kKeepNone;
      }
      // Present and stays present: pure multiplicity growth.
      stats_.gamma_dups.fetch_add(s, std::memory_order_relaxed);
      store_count(t, after);
      return kKeepNone;
    }
    // s < 0: retraction.
    if (before >= 1 && after <= 0) {
      gamma_remove(t);
      store_count(t, after);  // after <= -1 keeps the residue as debt
      if (after < 0) {
        stats_.retract_debts.fetch_add(-after, std::memory_order_relaxed);
      }
      has_retracted_.store(true, std::memory_order_relaxed);
      return kKeepRetract;
    }
    if (before >= 1) {
      // Stays present: multiplicity shrinks.
      store_count(t, after);
      return kKeepNone;
    }
    // Absent: the retract arrived before its insert — record a debt.
    stats_.retract_debts.fetch_add(-s, std::memory_order_relaxed);
    store_count(t, after);
    return kKeepNone;
  }

  /// Resolves an upsert at processing time against the live pk index.
  /// Any displaced tuple is written into *displaced for phase B's
  /// retraction cascade.
  std::uint8_t upsert_gamma(const T& t, T* displaced) {
    const std::int64_t pk = decl_.pk_(t);
    const std::optional<T> existing = peek_pk(pk);
    if (existing && *existing == t) {
      stats_.gamma_dups.fetch_add(1, std::memory_order_relaxed);
      return kKeepNone;
    }
    if (existing) {
      // Force the incumbent out entirely, whatever its multiplicity: an
      // upsert is a statement about the key's current row, not a
      // counted delta.
      clear_count(*existing);
      gamma_remove(*existing);
      has_retracted_.store(true, std::memory_order_relaxed);
      stats_.upsert_replaced.fetch_add(1, std::memory_order_relaxed);
      *displaced = *existing;
    }
    clear_count(t);  // wipe any debt: the key's row is now exactly t
    const bool fresh = insert_gamma(t);
    JSTAR_CHECK_MSG(fresh, "upsert into '" + name_ +
                               "' failed to claim the freed pk slot");
    return existing ? kKeepUpsert : kKeepInsert;
  }

  /// Removes a tuple that just transitioned to absent: the pk slot (only
  /// when this tuple owns it), the store itself, and every secondary
  /// index.  Eager index erasure keeps routed queries from resurrecting
  /// retracted tuples; the probe-side revalidation in execute_plan backs
  /// it up for any window where an index entry is momentarily stale.
  void gamma_remove(const T& t) {
    if (has_pk_) {
      const std::int64_t pk = decl_.pk_(t);
      const std::optional<T> existing = peek_pk(pk);
      if (existing && *existing == t) {
        if (env_.parallel) {
          pk_index_par_.erase(pk);
        } else {
          pk_index_seq_.erase(pk);
        }
      }
    }
    if (store_->erase(t)) {
      stats_.gamma_erased.fetch_add(1, std::memory_order_relaxed);
    }
    for (const auto& idx : indexes_) idx->erase(t);
  }

  PlannerCatalog build_planner_catalog() const {
    PlannerCatalog cat;
    cat.pk_tag = has_pk_ ? decl_.pk_tag_ : nullptr;
    cat.hash_indexes.reserve(indexes_.size());
    for (const auto& idx : indexes_) cat.hash_indexes.push_back({idx->tags});
    cat.range_indexes.reserve(range_indexes_.size());
    for (const auto& ri : range_indexes_) {
      cat.range_indexes.push_back({ri.tags});
    }
    cat.store_ordered = store_ != nullptr && store_->ordered();
    cat.no_gamma = no_gamma_;
    if (const auto* ops = dynamic_cast<const ColumnarOps<T>*>(store_.get())) {
      cat.column_tags = ops->column_tags();
    }
    return cat;
  }

  /// Retention sweep hook (EpochWindowStore retire listener): drop the
  /// retired tuple from every secondary index.  Counted tables also
  /// forget the tuple's multiplicity (and any debt): window retirement
  /// erases a tuple completely, keeping count map and store in
  /// agreement.
  void retire_from_indexes(const T& t) {
    if (decl_.counted_ && !count_shards_.empty()) clear_count(t);
    for (const auto& idx : indexes_) {
      if (idx->erase(t)) {
        stats_.index_retired.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Normalises an exact predicate's bindings into the kernel interface's
  /// inclusive intervals (equalities become [v, v]).
  static std::vector<typename ColumnarOps<T>::Bound> kernel_bounds(
      const query::Pred<T>& pred) {
    std::vector<typename ColumnarOps<T>::Bound> out;
    out.reserve(pred.eq_bindings().size() + pred.range_bindings().size());
    for (const query::EqBinding& e : pred.eq_bindings()) {
      out.push_back({e.field_tag, e.value, e.value});
    }
    for (const query::RangeBinding& r : pred.range_bindings()) {
      out.push_back({r.field_tag, r.lo, r.hi});
    }
    return out;
  }

  void note_kernel(const typename ColumnarOps<T>::KernelStats& ks) const {
    stats_.columnar_kernels.fetch_add(1, std::memory_order_relaxed);
    stats_.columnar_rows.fetch_add(ks.rows, std::memory_order_relaxed);
    stats_.columnar_selected.fetch_add(ks.selected,
                                       std::memory_order_relaxed);
    if (ks.morsels > 0) note_morsels(static_cast<std::size_t>(ks.morsels));
  }

  void note_morsels(std::size_t splits) const {
    stats_.morsel_runs.fetch_add(1, std::memory_order_relaxed);
    stats_.morsel_splits.fetch_add(static_cast<std::int64_t>(splits),
                                   std::memory_order_relaxed);
  }

  /// Morsel-parallel full sweep: asks the store to run its fixed-size
  /// morsel partition over the pool, reducing each morsel into its own
  /// Partial slot (disjoint per morsel — no synchronisation).  Returns
  /// the partials in storage order, or nullopt when the store declined
  /// (no pool hinted, morsels switched off, below the sequential cutoff,
  /// or a substrate without contiguous spans) — callers then run their
  /// sequential path.  `per_tuple` must be pure: it runs concurrently.
  template <typename Partial, typename PerTuple>
  std::optional<std::vector<Partial>> scan_morsel_parts(
      const PerTuple& per_tuple) const {
    if (store_ == nullptr) return std::nullopt;
    std::vector<Partial> parts;
    const bool ran = store_->scan_morsels(
        [&](std::size_t m) { parts.resize(m); },
        [&](const T* data, std::size_t n, std::size_t mi) {
          Partial& p = parts[mi];
          for (std::size_t i = 0; i < n; ++i) per_tuple(p, data[i]);
        });
    if (!ran) return std::nullopt;
    note_morsels(parts.size());
    return parts;
  }

  /// Runs one compiled access path, applying `pred` as the residual filter
  /// on every routed path (so routing can never widen the result set) and
  /// counting which path served the query.  Windowed tables additionally
  /// re-validate index/pk hits against the store: the pk index is
  /// deliberately never retired (get_unique's documented contract), and
  /// revalidation keeps the sweep-based index maintenance honest even
  /// against custom stores.
  void execute_plan(const QueryPlan& plan, const query::Pred<T>& pred,
                    const std::function<void(const T&)>& fn) const {
    // Probe hits must be revalidated once tuples can disappear mid-run:
    // retention windows always could, and a counted table starts to the
    // moment its first retraction lands (sticky flag — erasure is eager,
    // but a racing probe may still hold a just-erased hit).
    const bool check_live =
        retiring_store_ != nullptr ||
        (decl_.counted_ && has_retracted_.load(std::memory_order_relaxed));
    std::int64_t examined = 0, passed = 0;
    // Hits coming from a side structure (pk index, secondary hash index)
    // may be stale on windowed tables — the pk index is deliberately
    // never retired — so they are revalidated against the store.  Tuples
    // delivered by the store's *own* scans are live by construction, and
    // re-entering the store from inside one of its scan callbacks would
    // self-deadlock on the flat substrates' lock, so the scan-side
    // residual skips the membership re-check.
    const auto residual_probe = [&](const T& t) {
      ++examined;
      if (pred(t) && (!check_live || store_->contains(t))) {
        ++passed;
        fn(t);
      }
    };
    const auto residual_scan = [&](const T& t) {
      ++examined;
      if (pred(t)) {
        ++passed;
        fn(t);
      }
    };
    switch (plan.path) {
      case AccessPath::AlwaysEmpty:
        stats_.empty_plans.fetch_add(1, std::memory_order_relaxed);
        return;
      case AccessPath::PkProbe: {
        stats_.pk_probes.fetch_add(1, std::memory_order_relaxed);
        if (const std::optional<T> hit = peek_pk(plan.values[0])) {
          residual_probe(*hit);
        }
        break;
      }
      case AccessPath::IndexProbe: {
        stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
        const SecondaryIndex& idx =
            *indexes_[static_cast<std::size_t>(plan.slot)];
        idx.lookup(idx.key_from_values(plan.values), residual_probe);
        break;
      }
      case AccessPath::RangeScan: {
        stats_.range_scans.fetch_add(1, std::memory_order_relaxed);
        execute_range(plan, residual_scan);
        break;
      }
      case AccessPath::FullScan:
        stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
        if (plan.columnar && columnar_ops_ != nullptr) {
          // Vectorized pushdown: the exact predicate is evaluated against
          // the columns (selection mask), and only selected rows are
          // reconstituted — no per-tuple residual call.
          note_kernel(columnar_ops_->kernel_select(
              kernel_bounds(pred), [&](const T* data, std::size_t n) {
                for (std::size_t i = 0; i < n; ++i) fn(data[i]);
              }));
          return;
        }
        raw_scan([&](const T& t) {
          if (pred(t)) fn(t);
        });
        return;
    }
    stats_.residual_rows.fetch_add(examined, std::memory_order_relaxed);
    stats_.residual_hits.fetch_add(passed, std::memory_order_relaxed);
  }

  /// Materialises the plan's boundary tuples through the range index's
  /// lower_bound factory and seeks the ordered store.  Every degradation
  /// errs on the wide side (the residual filter trims, so a seek may
  /// visit extra tuples but must never skip matching ones):
  ///  * an unbounded-below interval with no eq prefix has no seek origin
  ///    — residual-scan the whole store;
  ///  * a bound the factory could not represent exactly (a query constant
  ///    outside a narrower field type's range truncates; detected as a
  ///    failed getter round trip) widens to the residual scan (lo side)
  ///    or an open-above seek (hi side);
  ///  * an upper bound that cannot be incremented without int64 overflow
  ///    becomes an open-above seek.
  void execute_range(const QueryPlan& plan,
                     const std::function<void(const T&)>& residual) const {
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    const RangeIndex& ri = range_indexes_[static_cast<std::size_t>(plan.slot)];
    std::vector<std::int64_t> lov = plan.values;
    // The INT64_MIN "unbounded below" sentinel is pushed like any other
    // bound: for an int64 leading field it round-trips (seek from the
    // store minimum, still bounded above); for a narrower field the
    // bound_exact check below catches the truncation and degrades.
    if (plan.has_range) lov.push_back(plan.lo);
    if (lov.empty()) {
      store_->scan(residual);
      return;
    }
    const T lo_t = ri.lower_bound(lov);
    if (!ri.bound_exact(lo_t, lov)) {
      store_->scan(residual);
      return;
    }
    std::vector<std::int64_t> hiv = plan.values;
    bool open_above = false;
    if (plan.has_range && plan.hi != kMax) {
      hiv.push_back(plan.hi + 1);
    } else if (!hiv.empty() && hiv.back() != kMax) {
      hiv.back() += 1;  // end of the eq prefix
    } else {
      open_above = true;
    }
    if (!open_above) {
      const T hi_t = ri.lower_bound(hiv);
      if (ri.bound_exact(hi_t, hiv) && lo_t < hi_t) {
        store_->scan_range(lo_t, hi_t, residual);
        return;
      }
    }
    store_->scan_from(lo_t, residual);
  }

  /// Store scan dispatch shared by scan() and the planner's residual
  /// full scan (no stats bump): chunk-capable stores get the templated
  /// per-span loop — one type-erased hop per contiguous span, the
  /// visitor inlined in the loop — the rest the classic per-tuple
  /// type-erased visitor.
  template <typename Fn>
  void raw_scan(Fn&& fn) const {
    if (store_->chunked()) {
      store_->scan_chunks([&](const T* data, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) fn(data[i]);
      });
    } else {
      store_->scan(std::function<void(const T&)>(std::forward<Fn>(fn)));
    }
  }

  std::optional<T> peek_pk(std::int64_t pk) const {
    if (env_.parallel) {
      T out;
      if (pk_index_par_.lookup(pk, out)) return out;
      return std::nullopt;
    }
    auto it = pk_index_seq_.find(pk);
    if (it == pk_index_seq_.end()) return std::nullopt;
    return it->second;
  }

  std::int64_t current_epoch() const {
    return env_.epoch != nullptr
               ? env_.epoch->load(std::memory_order_relaxed)
               : 0;
  }

  void fire_tuple(const DeltaKey& k, const T& t, int sign = +1) {
    if (sign > 0) {
      if (decl_.effect_) decl_.effect_(t);
    } else if (decl_.retract_effect_) {
      decl_.retract_effect_(t);
    }
    if (rules_.empty()) return;
    RuleCtx ctx(k, id_, env_.edges, current_epoch(), sign);
    for (const auto& r : rules_) {
      stats_.fires.fetch_add(1, std::memory_order_relaxed);
      r.fn(ctx, t);
    }
  }

  TableDecl<T> decl_;
  RuntimeEnv env_;
  std::vector<KeyStep> key_steps_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
  std::vector<RangeIndex> range_indexes_;
  std::unique_ptr<GammaStore<T>> store_;
  // Kernel interface when the store is columnar (aliases store_).
  ColumnarOps<T>* columnar_ops_ = nullptr;
  // Set iff the store is a retain(N) engine-epoch window (aliases store_)
  // — either the bucketed EpochWindowStore or the in-place-compacting
  // FlatOrderedStore; retire_epochs drives it through this interface.
  RetiringStore<T>* window_store_ = nullptr;
  // Set for either retention flavour (retain or retain_epochs); the retire
  // listener sweeping the secondary indexes hangs off this.
  RetiringStore<T>* retiring_store_ = nullptr;
  // True only for tuple-carried epoch windows (retain_epochs), whose
  // insert path can retire buckets mid-run (see update_indexes).
  bool tuple_epoch_window_ = false;
  PlannerCatalog catalog_;  // built once by configure()
  std::vector<NamedRule> rules_;
  bool has_pk_ = false;
  // Counted (multiset) Gamma: the side count map's shards, plus a sticky
  // flag that arms probe revalidation once any retraction has removed a
  // tuple (stale index/pk hits become possible from then on).
  std::vector<std::unique_ptr<CountShard>> count_shards_;
  std::atomic<bool> has_retracted_{false};
  // Primary-key index: one of these is active depending on strategy.
  std::unordered_map<std::int64_t, T> pk_index_seq_;
  mutable concurrent::StripedHashMap<std::int64_t, T> pk_index_par_{64};
  // --- batch-at-a-time emission state ---
  bool emit_enabled_ = false;  // configure(): option AND env AND !noDelta
  const std::uint64_t emit_serial_ = next_emit_serial();
  std::atomic<bool> emit_dirty_{false};  // any record buffered since flush
  std::mutex emit_mu_;  // guards emit_buffers_ registration
  std::vector<std::unique_ptr<EmitBuffer>> emit_buffers_;
  // flush_emits scratch (coordinator-only), reused across batches.
  std::vector<const EmitRecord*> flush_ptrs_;
  std::vector<std::ptrdiff_t> flush_next_;
  std::vector<EmitGroup> flush_groups_;
  std::vector<DeltaKey> flush_keys_;
};

}  // namespace jstar
