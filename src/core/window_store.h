// Epoch-window Gamma storage — the generalised form of the Median
// program's `double[2][100000000]` lifetime trick (§6.6) and of Fig 3's
// step 4 ("if program analysis makes it possible to determine that this
// tuple can never participate in future queries, then it can be removed
// from the Gamma database ... we use manual lifetime hints from the
// user").
//
// The hint: tuples carry a monotonically nondecreasing *epoch* field (the
// Median program's `iter`); rules only ever query the most recent
// `keep_epochs` epochs ("the rules only use iter and iter+1, so we only
// need two copies of the array").  EpochWindowStore buckets tuples by
// epoch and retires whole buckets as the maximum observed epoch advances,
// so the live heap stays proportional to the window instead of the whole
// run history.
//
// Thread-safety: insert/contains/scans take a shared mutex; bucket
// retirement happens inside insert under the exclusive lock.  This store
// is used for tables whose per-batch insert volume is moderate; tables
// with millions of inserts per batch should use a custom store (the
// Median app's array store) — the point of §1.4 is exactly that this
// choice is a swappable hint.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "core/gamma_store.h"
#include "util/check.h"

namespace jstar {

/// Hash functor wrapping the table declaration's hash function, so window
/// stores work for tuple structs without a std::hash specialisation.
template <typename T>
struct FnHash {
  std::function<std::size_t(const T&)> fn;
  std::size_t operator()(const T& t) const { return fn(t); }
};

template <typename T, typename Hash = std::hash<T>>
class EpochWindowStore final : public GammaStore<T>, public RetiringStore<T> {
 public:
  /// `epoch_of` extracts the epoch field; the most recent `keep_epochs`
  /// distinct epoch *values* (by numeric distance, not count) stay live:
  /// after a tuple with epoch e arrives, tuples with epoch <= e -
  /// keep_epochs are retired.  `clock_epochs` says the epoch comes from an
  /// external clock (TableDecl::retain over Engine::begin_epoch) rather
  /// than from the tuple itself: only then can the same tuple re-arrive
  /// under a different epoch, so dedup/contains must scan the whole live
  /// window instead of the tuple's own bucket.
  EpochWindowStore(std::function<std::int64_t(const T&)> epoch_of,
                   std::int64_t keep_epochs, Hash hash = Hash{},
                   bool clock_epochs = false)
      : epoch_of_(std::move(epoch_of)), keep_(keep_epochs),
        clock_epochs_(clock_epochs), hash_(std::move(hash)) {
    JSTAR_CHECK_MSG(keep_ >= 1, "EpochWindowStore needs keep_epochs >= 1");
  }

  bool insert(const T& t) override {
    const std::int64_t e = epoch_of_(t);
    std::unique_lock lk(mu_);
    if (e <= max_epoch_ - keep_) {
      // A straggler behind the window: by the user's hint no future query
      // can observe it, so dropping preserves semantics.  It still counts
      // as "fresh" (returns true) because it was never stored before —
      // rules must fire for it exactly as for any tuple.
      retired_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Engine-clock windows: the same tuple may re-arrive in a later epoch
    // and must stay a set-semantics duplicate (lifetime keyed to the first
    // arrival), so dedup spans the whole live window.  Tuple-carried
    // epochs skip this — their bucket is a pure function of the tuple.
    if (clock_epochs_) {
      for (const auto& [epoch, bucket] : buckets_) {
        if (epoch != e && bucket.count(t) != 0) return false;
      }
    }
    auto bucket_it = buckets_.find(e);
    if (bucket_it == buckets_.end()) {
      bucket_it = buckets_.emplace(e, Bucket(8, hash_)).first;
    }
    const bool fresh = bucket_it->second.insert(t).second;
    if (fresh) ++size_;
    std::vector<T> victims;
    if (e > max_epoch_) {
      max_epoch_ = e;
      retire_locked(max_epoch_ - keep_, &victims);
    }
    lk.unlock();
    notify_retired(victims);
    return fresh;
  }

  bool contains(const T& t) const override {
    std::shared_lock lk(mu_);
    if (clock_epochs_) {
      // Window-wide membership, mirroring insert's dedup scope (the live
      // bucket count is at most keep_ + 1, so this stays O(window)).
      for (const auto& [epoch, bucket] : buckets_) {
        (void)epoch;
        if (bucket.count(t) != 0) return true;
      }
      return false;
    }
    const auto it = buckets_.find(epoch_of_(t));
    return it != buckets_.end() && it->second.count(t) != 0;
  }

  void scan(const std::function<void(const T&)>& fn) const override {
    std::shared_lock lk(mu_);
    for (const auto& [epoch, bucket] : buckets_) {
      (void)epoch;
      for (const T& t : bucket) fn(t);
    }
  }

  /// Retraction support: removes `t` from whichever live bucket holds it.
  /// Clock-epoch windows search the whole live window (mirroring insert's
  /// dedup scope); tuple-carried epochs go straight to the tuple's bucket.
  /// A straggler that the window already dropped simply returns false —
  /// the tuple is gone either way.
  bool erase(const T& t) override {
    std::unique_lock lk(mu_);
    if (clock_epochs_) {
      for (auto& [epoch, bucket] : buckets_) {
        (void)epoch;
        if (bucket.erase(t) != 0) {
          --size_;
          return true;
        }
      }
      return false;
    }
    const auto it = buckets_.find(epoch_of_(t));
    if (it == buckets_.end() || it->second.erase(t) == 0) return false;
    --size_;
    if (it->second.empty()) buckets_.erase(it);
    return true;
  }

  bool erasable() const override { return true; }

  std::size_t size() const override {
    std::shared_lock lk(mu_);
    return size_;
  }

  std::string describe() const override { return "epoch-window"; }

  /// Visits only the tuples of one epoch (the common query shape: "the
  /// current iteration's array").
  void scan_epoch(std::int64_t epoch,
                  const std::function<void(const T&)>& fn) const {
    std::shared_lock lk(mu_);
    const auto it = buckets_.find(epoch);
    if (it == buckets_.end()) return;
    for (const T& t : it->second) fn(t);
  }

  std::int64_t max_epoch() const {
    std::shared_lock lk(mu_);
    return max_epoch_;
  }
  std::int64_t live_epochs() const {
    std::shared_lock lk(mu_);
    return static_cast<std::int64_t>(buckets_.size());
  }
  /// Tuples dropped by window retirement so far.
  std::int64_t retired() const {
    return retired_.load(std::memory_order_relaxed);
  }

  /// Registers a callback invoked once per tuple the window retires (both
  /// insert-driven and retire_up_to retirement).  This is how epoch-aware
  /// index maintenance works: the owning table removes retired tuples from
  /// its secondary indexes, so indexes forget exactly when Gamma does.
  /// Called *after* the store releases its exclusive lock: the listener
  /// takes index-shard locks that queries hold while re-entering this
  /// store (probe revalidation), so notifying under the lock would close
  /// a lock-order cycle.  The brief window where an index still lists a
  /// retired tuple is harmless — probe hits are revalidated against the
  /// store.  Set before the engine runs; not thread-safe against
  /// concurrent inserts.
  void set_retire_listener(std::function<void(const T&)> fn) override {
    on_retire_ = std::move(fn);
  }

  /// Explicit GC entry point for engine-epoch windows (TableDecl::retain):
  /// retires every bucket with epoch <= threshold, exactly as if an insert
  /// had advanced the window past them.  Insert-driven retirement alone is
  /// not enough under a stream — a quiet table would otherwise never shed
  /// its old epochs.  max_epoch_ ratchets forward so stragglers behind the
  /// new window keep being dropped on insert.  Returns the number of
  /// tuples retired.
  std::int64_t retire_up_to(std::int64_t threshold) override {
    std::vector<T> victims;
    std::int64_t dropped;
    {
      std::unique_lock lk(mu_);
      max_epoch_ = std::max(max_epoch_, threshold + keep_);
      dropped = retire_locked(threshold, &victims);
    }
    notify_retired(victims);
    return dropped;
  }

 private:
  using Bucket = std::unordered_set<T, Hash>;

  /// Erases every bucket with epoch <= threshold, maintaining size_ and
  /// retired_.  Caller holds the exclusive lock; the retired tuples are
  /// collected into `victims` (only when a listener is registered) for
  /// notification after the lock is released.
  std::int64_t retire_locked(std::int64_t threshold, std::vector<T>* victims) {
    std::int64_t dropped = 0;
    for (auto it = buckets_.begin();
         it != buckets_.end() && it->first <= threshold;) {
      dropped += static_cast<std::int64_t>(it->second.size());
      size_ -= it->second.size();
      if (on_retire_) {
        victims->insert(victims->end(), it->second.begin(), it->second.end());
      }
      it = buckets_.erase(it);
    }
    retired_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  void notify_retired(const std::vector<T>& victims) const {
    if (!on_retire_) return;
    for (const T& t : victims) on_retire_(t);
  }

  std::function<std::int64_t(const T&)> epoch_of_;
  const std::int64_t keep_;
  const bool clock_epochs_;
  Hash hash_;
  std::function<void(const T&)> on_retire_;

  mutable std::shared_mutex mu_;
  std::map<std::int64_t, Bucket> buckets_;
  std::size_t size_ = 0;
  std::int64_t max_epoch_ = INT64_MIN / 2;
  std::atomic<std::int64_t> retired_{0};
};

}  // namespace jstar
