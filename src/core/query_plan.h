// The query-planner layer (§1.4): compiles a query::Pred<T> into an
// *access path* against one table's storage.
//
// The paper's claim is that query structure, not program text, should pick
// the data structure.  The predicate DSL (core/query.h) extracts structure
// — equality and interval bindings per field — and this layer matches that
// structure against what the table declared: a primary key, secondary hash
// indexes (single-field or composite), and ordered-range prefixes served
// natively by an ordered Gamma store.  Table<T>::query() then *executes*
// the plan; results are identical whichever path is chosen (the residual
// predicate is always applied), so planning can never change program
// meaning — only its cost:
//
//   AlwaysEmpty  O(1)          bindings are contradictory; touch nothing
//   PkProbe      O(1)          pred pins the primary-key field
//   IndexProbe   O(k)          secondary hash index bucket (k = bucket size)
//   RangeScan    O(log N + k)  ordered store seek over an eq-prefix + range
//   FullScan     O(N)          residual scan — the only option before this
//                              layer existed
//
// The planner is deliberately engine-free: it consumes a PlannerCatalog (a
// plain description of the table's access structures) so it can be unit
// tested without building tables, and so future layers (sharded routing,
// cost models) can reuse it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/query.h"

namespace jstar {

/// How a planned query will touch the table's data.
enum class AccessPath {
  AlwaysEmpty,  ///< contradiction in the bindings; no data touched
  PkProbe,      ///< primary-key hash probe
  IndexProbe,   ///< secondary hash index bucket visit
  RangeScan,    ///< ordered-store range scan (eq-prefix + optional interval)
  FullScan,     ///< residual full scan
};

inline const char* to_string(AccessPath p) {
  switch (p) {
    case AccessPath::AlwaysEmpty: return "always-empty";
    case AccessPath::PkProbe: return "pk-probe";
    case AccessPath::IndexProbe: return "index-probe";
    case AccessPath::RangeScan: return "range-scan";
    case AccessPath::FullScan: return "full-scan";
  }
  return "?";
}

/// One hash index the table declared: all `tags` must be equality-bound
/// for the index to serve a query (composite indexes list several tags).
struct HashIndexSpec {
  std::vector<const void*> tags;
};

/// One ordered-range capability: a prefix of the Gamma store's
/// lexicographic sort order, in order.  A query routes here when the
/// leading tags are equality-bound and (optionally) the next tag carries
/// an interval binding.
struct RangeIndexSpec {
  std::vector<const void*> tags;
};

/// Everything the planner needs to know about a table, engine-free.
struct PlannerCatalog {
  const void* pk_tag = nullptr;  ///< primary-key field tag, if declared
  std::vector<HashIndexSpec> hash_indexes;
  std::vector<RangeIndexSpec> range_indexes;
  bool store_ordered = false;  ///< Gamma store serves seeks (TreeSet/SkipList)
  bool no_gamma = false;       ///< NullStore: scans see nothing
  /// Field tags the store holds as contiguous columns (ColumnStore); a
  /// residual full scan over an exact predicate whose every bound field is
  /// listed here compiles to vectorized per-column kernels.
  std::vector<const void*> column_tags;
};

/// A compiled access path.  `values` are the equality keys in the chosen
/// index's tag order (PkProbe uses values[0]); RangeScan uses `values` as
/// the eq-bound prefix plus, when `has_range` is set, the inclusive
/// [lo, hi] interval on the next prefix field.
struct QueryPlan {
  AccessPath path = AccessPath::FullScan;
  int slot = -1;  ///< which hash/range index (position in the catalog)
  std::vector<std::int64_t> values;
  bool has_range = false;
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  /// FullScan refinement: the residual scan can run as per-column
  /// vectorized kernels (exact predicate, every bound field stored as a
  /// column).  Never set on other paths — probes and range seeks already
  /// beat a full columnar sweep.
  bool columnar = false;

  /// Human-readable explain line for tests, logs and benchmarks.
  std::string describe() const {
    std::string s = to_string(path);
    if (path == AccessPath::FullScan && columnar) s += "(columnar-kernel)";
    if (path == AccessPath::PkProbe && !values.empty()) {
      s += "(pk=" + std::to_string(values[0]) + ")";
    } else if (path == AccessPath::IndexProbe) {
      s += "(index " + std::to_string(slot) + ", keys=";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(values[i]);
      }
      s += ")";
    } else if (path == AccessPath::RangeScan) {
      s += "(range " + std::to_string(slot) + ", prefix=";
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(values[i]);
      }
      if (has_range) {
        s += ", [" +
             (lo == std::numeric_limits<std::int64_t>::min()
                  ? std::string("-inf")
                  : std::to_string(lo)) +
             ", " +
             (hi == std::numeric_limits<std::int64_t>::max()
                  ? std::string("+inf")
                  : std::to_string(hi)) +
             "]";
      }
      s += ")";
    }
    return s;
  }
};

namespace detail {

inline const query::EqBinding* find_eq(
    const std::vector<query::EqBinding>& eqs, const void* tag) {
  for (const query::EqBinding& e : eqs) {
    if (e.field_tag == tag) return &e;
  }
  return nullptr;
}

inline const query::RangeBinding* find_range(
    const std::vector<query::RangeBinding>& ranges, const void* tag) {
  for (const query::RangeBinding& r : ranges) {
    if (r.field_tag == tag) return &r;
  }
  return nullptr;
}

}  // namespace detail

/// Compiles a predicate against a table description.  Deterministic: the
/// first (most specific) match in the fixed preference order wins —
/// contradiction, primary key, widest-covering hash index, longest
/// ordered-range prefix, residual scan.
template <typename T>
QueryPlan plan_query(const PlannerCatalog& cat, const query::Pred<T>& pred) {
  QueryPlan plan;
  const auto& eqs = pred.eq_bindings();
  const auto& ranges = pred.range_bindings();

  if (pred.never()) {
    plan.path = AccessPath::AlwaysEmpty;
    return plan;
  }
  // A -noGamma table stores nothing: every scan is empty, and any index
  // the program declared must not resurrect tuples the store dropped, so
  // the plan degrades to the (vacuous) scan.
  if (cat.no_gamma) return plan;

  if (cat.pk_tag != nullptr) {
    if (const query::EqBinding* e = detail::find_eq(eqs, cat.pk_tag)) {
      plan.path = AccessPath::PkProbe;
      plan.values = {e->value};
      return plan;
    }
  }

  // Widest hash index whose every tag is equality-bound (ties: first
  // declared).  Composite indexes therefore beat single-field ones when
  // both apply.
  int best_slot = -1;
  std::size_t best_width = 0;
  for (std::size_t i = 0; i < cat.hash_indexes.size(); ++i) {
    const HashIndexSpec& idx = cat.hash_indexes[i];
    if (idx.tags.empty() || idx.tags.size() <= best_width) continue;
    bool all = true;
    for (const void* tag : idx.tags) {
      if (detail::find_eq(eqs, tag) == nullptr) {
        all = false;
        break;
      }
    }
    if (all) {
      best_slot = static_cast<int>(i);
      best_width = idx.tags.size();
    }
  }
  if (best_slot >= 0) {
    plan.path = AccessPath::IndexProbe;
    plan.slot = best_slot;
    for (const void* tag : cat.hash_indexes[static_cast<std::size_t>(
             best_slot)].tags) {
      plan.values.push_back(detail::find_eq(eqs, tag)->value);
    }
    return plan;
  }

  // Longest ordered-range prefix: leading tags equality-bound, optionally
  // one interval on the next tag.  Only worth it when the store can seek.
  if (cat.store_ordered) {
    int range_slot = -1;
    std::size_t range_prefix = 0;
    bool range_has_interval = false;
    const query::RangeBinding* range_interval = nullptr;
    for (std::size_t i = 0; i < cat.range_indexes.size(); ++i) {
      const RangeIndexSpec& idx = cat.range_indexes[i];
      std::size_t prefix = 0;
      while (prefix < idx.tags.size() &&
             detail::find_eq(eqs, idx.tags[prefix]) != nullptr) {
        ++prefix;
      }
      const query::RangeBinding* interval =
          prefix < idx.tags.size()
              ? detail::find_range(ranges, idx.tags[prefix])
              : nullptr;
      if (prefix == 0 && interval == nullptr) continue;
      const std::size_t covered = prefix + (interval != nullptr ? 1 : 0);
      if (covered > range_prefix + (range_has_interval ? 1 : 0) ||
          range_slot < 0) {
        range_slot = static_cast<int>(i);
        range_prefix = prefix;
        range_has_interval = interval != nullptr;
        range_interval = interval;
      }
    }
    if (range_slot >= 0) {
      plan.path = AccessPath::RangeScan;
      plan.slot = range_slot;
      const RangeIndexSpec& idx =
          cat.range_indexes[static_cast<std::size_t>(range_slot)];
      for (std::size_t i = 0; i < range_prefix; ++i) {
        plan.values.push_back(detail::find_eq(eqs, idx.tags[i])->value);
      }
      if (range_has_interval) {
        plan.has_range = true;
        plan.lo = range_interval->lo;
        plan.hi = range_interval->hi;
      }
      return plan;
    }
  }

  // Residual FullScan.  A columnar store can still serve it with
  // vectorized kernels when the predicate is binding-exact (the callable
  // is fully described by its bindings, so skipping the per-tuple
  // residual is sound) and every bound field is a stored column.
  if (!cat.column_tags.empty() && pred.binding_exact() &&
      !(eqs.empty() && ranges.empty())) {
    const auto stored = [&](const void* tag) {
      return std::find(cat.column_tags.begin(), cat.column_tags.end(), tag) !=
             cat.column_tags.end();
    };
    bool covered = true;
    for (const query::EqBinding& e : eqs) covered = covered && stored(e.field_tag);
    for (const query::RangeBinding& r : ranges) {
      covered = covered && stored(r.field_tag);
    }
    plan.columnar = covered;
  }
  return plan;
}

}  // namespace jstar
