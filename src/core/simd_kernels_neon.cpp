// NEON kernel table.  On aarch64 NEON is baseline, so this TU needs no
// -m flag gate — it compiles whenever the target is aarch64 and the
// nullptr stub keeps x86 builds portable.
#include "core/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace jstar::simd {

namespace {

inline std::uint8_t in_bound1(std::int64_t v, std::int64_t lo,
                              std::int64_t hi) {
  return static_cast<std::uint8_t>(static_cast<int>(v >= lo) &
                                   static_cast<int>(v <= hi));
}

std::int64_t neon_count_in_range(const std::int64_t* v, std::size_t n,
                                 std::int64_t lo, std::int64_t hi) {
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    const uint64x2_t ge = vcgeq_s64(x, vlo);
    const uint64x2_t le = vcleq_s64(x, vhi);
    const int64x2_t in = vreinterpretq_s64_u64(vandq_u64(ge, le));
    // In-range lanes are -1: subtracting adds 1 per selected lane.
    acc = vsubq_s64(acc, in);
  }
  std::int64_t c = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) c += in_bound1(v[i], lo, hi);
  return c;
}

void neon_mask_and_in_range(const std::int64_t* v, std::size_t n,
                            std::int64_t lo, std::int64_t hi,
                            std::uint8_t* sel) {
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    const uint64x2_t ge = vcgeq_s64(x, vlo);
    const uint64x2_t le = vcleq_s64(x, vhi);
    const uint64x2_t in = vandq_u64(ge, le);
    sel[i] &= static_cast<std::uint8_t>(vgetq_lane_u64(in, 0) & 1);
    sel[i + 1] &= static_cast<std::uint8_t>(vgetq_lane_u64(in, 1) & 1);
  }
  for (; i < n; ++i) sel[i] &= in_bound1(v[i], lo, hi);
}

std::int64_t neon_mask_count(const std::uint8_t* sel, std::size_t n) {
  // Bytes are 0/1 by construction; sum 16 at a time via pairwise widening.
  std::int64_t c = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t bytes = vld1q_u8(sel + i);
    c += static_cast<std::int64_t>(vaddvq_u8(bytes));
  }
  for (; i < n; ++i) c += sel[i];
  return c;
}

}  // namespace

const Kernels* neon_kernels() {
  // The masked argmin is bandwidth-bound either way; reuse the scalar
  // routine rather than hand-rolling a 2-lane blend chain.
  static const Kernels kNeon{neon_count_in_range, neon_mask_and_in_range,
                             neon_mask_count,
                             scalar_kernels().masked_min_i64};
  return &kNeon;
}

}  // namespace jstar::simd

#else  // !__aarch64__

namespace jstar::simd {
const Kernels* neon_kernels() { return nullptr; }
}  // namespace jstar::simd

#endif
