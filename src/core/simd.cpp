// Portable half of the SIMD dispatch layer: the scalar kernel table
// (always available, also the tail routines the vector TUs reuse), cpuid
// feature detection, and the JSTAR_SIMD kill-switch.  The -m flag-gated
// vector tables live in simd_kernels_{avx2,avx512,neon}.cpp.
#include "core/simd.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace jstar::simd {

namespace {

std::int64_t scalar_count_in_range(const std::int64_t* v, std::size_t n,
                                   std::int64_t lo, std::int64_t hi) {
  std::int64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::int64_t>(static_cast<int>(v[i] >= lo) &
                                   static_cast<int>(v[i] <= hi));
  }
  return c;
}

void scalar_mask_and_in_range(const std::int64_t* v, std::size_t n,
                              std::int64_t lo, std::int64_t hi,
                              std::uint8_t* sel) {
  for (std::size_t i = 0; i < n; ++i) {
    sel[i] &= static_cast<std::uint8_t>(static_cast<int>(v[i] >= lo) &
                                        static_cast<int>(v[i] <= hi));
  }
}

std::int64_t scalar_mask_count(const std::uint8_t* sel, std::size_t n) {
  std::int64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += sel[i];
  return c;
}

bool scalar_masked_min_i64(const std::int64_t* v, const std::uint8_t* sel,
                           std::size_t n, std::int64_t* out_min,
                           std::size_t* out_row) {
  bool found = false;
  std::int64_t best = 0;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!sel[i]) continue;
    // Strict less keeps the earliest row on ties.
    if (!found || v[i] < best) {
      found = true;
      best = v[i];
      best_i = i;
    }
  }
  if (found) {
    *out_min = best;
    *out_row = best_i;
  }
  return found;
}

constexpr Kernels kScalar{scalar_count_in_range, scalar_mask_and_in_range,
                          scalar_mask_count, scalar_masked_min_i64};

Level detect_level_uncached() {
#if defined(__aarch64__)
  return neon_kernels() != nullptr ? Level::Neon : Level::Scalar;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") && avx512_kernels() != nullptr) {
    return Level::Avx512;
  }
  if (__builtin_cpu_supports("avx2") && avx2_kernels() != nullptr) {
    return Level::Avx2;
  }
  return Level::Scalar;
#else
  return Level::Scalar;
#endif
}

Level env_cap() {
  const char* raw = std::getenv("JSTAR_SIMD");
  if (raw == nullptr) return Level::Avx512;  // no cap
  std::string s;
  for (const char* p = raw; *p != '\0'; ++p) {
    s.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (s == "off" || s == "scalar" || s == "0" || s == "false") {
    return Level::Scalar;
  }
  if (s == "neon") return Level::Neon;
  if (s == "avx2") return Level::Avx2;
  if (s == "avx512") return Level::Avx512;
  return Level::Avx512;  // unrecognized: no cap
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::Neon:
      return "neon";
    case Level::Avx2:
      return "avx2";
    case Level::Avx512:
      return "avx512";
    case Level::Scalar:
    default:
      return "scalar";
  }
}

const Kernels& scalar_kernels() { return kScalar; }

Level detect_level() {
  static const Level cached = detect_level_uncached();
  return cached;
}

Level active_level() {
  static const Level cached = [] {
    const Level hw = detect_level();
    const Level cap = env_cap();
    return resolved_level(hw < cap ? hw : cap);
  }();
  return cached;
}

const Kernels& kernels(Level level) {
  // Degrade to the nearest available lower level: an Avx512 request in a
  // binary without the AVX-512 TU resolves to AVX2, then scalar.
  if (level == Level::Avx512) {
    if (const Kernels* k = avx512_kernels()) return *k;
    level = Level::Avx2;
  }
  if (level == Level::Avx2) {
    if (const Kernels* k = avx2_kernels()) return *k;
  }
  if (level == Level::Neon) {
    if (const Kernels* k = neon_kernels()) return *k;
  }
  return kScalar;
}

Level resolved_level(Level level) {
  if (level == Level::Avx512 && avx512_kernels() != nullptr) {
    return Level::Avx512;
  }
  if (level >= Level::Avx2 && avx2_kernels() != nullptr) return Level::Avx2;
  if (level == Level::Neon && neon_kernels() != nullptr) return Level::Neon;
  return Level::Scalar;
}

const Kernels& active_kernels() { return kernels(active_level()); }

bool morsels_env_on() {
  static const bool on = [] {
    const char* raw = std::getenv("JSTAR_MORSELS");
    if (raw == nullptr) return true;
    std::string s;
    for (const char* p = raw; *p != '\0'; ++p) {
      s.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(*p))));
    }
    return !(s == "off" || s == "0" || s == "false");
  }();
  return on;
}

bool emit_env_on() {
  static const bool on = [] {
    const char* raw = std::getenv("JSTAR_EMIT");
    if (raw == nullptr) return true;
    std::string s;
    for (const char* p = raw; *p != '\0'; ++p) {
      s.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(*p))));
    }
    return !(s == "off" || s == "0" || s == "false");
  }();
  return on;
}

}  // namespace jstar::simd
