// Runtime-dispatched SIMD kernels for the columnar substrate (ROADMAP
// item 3's remaining headroom: "explicit SIMD via -march gates or runtime
// dispatch").
//
// Shape: four int64 primitives — range count, range mask-AND, mask
// popcount, masked argmin — each available at several dispatch levels.
// The portable scalar level always exists; AVX2 and AVX-512 levels are
// compiled in their own translation units (simd_kernels_avx2.cpp etc.)
// which CMake builds with the matching -m flags, so the rest of the
// binary stays portable and the right level is picked *at runtime* via
// cpuid (__builtin_cpu_supports).  On aarch64 the NEON level is baseline
// and needs no flag gate.
//
// Kill-switch: JSTAR_SIMD=off|scalar pins the scalar level regardless of
// the host (JSTAR_SIMD=avx2 caps an AVX-512 host at AVX2); the
// EngineOptions::simd flag reaches stores through TableBase::RuntimeEnv
// and ExecHints (core/gamma_store.h) — the env var wins over the option
// so differential harnesses can pin the reference path from outside.
//
// The primitives operate on raw int64 arrays + byte masks (the
// ColumnStore selection shape).  Bounds are inclusive [lo, hi] in int64
// space, matching ColumnarOps<T>::Bound; INT64_MIN/MAX bounds are legal
// and exercised by the differential tests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace jstar::simd {

enum class Level { Scalar = 0, Neon = 1, Avx2 = 2, Avx512 = 3 };

const char* to_string(Level level);

/// One dispatch level's kernel table.  All pointers are always non-null
/// (levels that lack a fused form fall back to the scalar routine).
struct Kernels {
  /// Number of v[i] with lo <= v[i] <= hi (inclusive).
  std::int64_t (*count_in_range)(const std::int64_t* v, std::size_t n,
                                 std::int64_t lo, std::int64_t hi);
  /// sel[i] &= (lo <= v[i] <= hi), byte mask (0/1 in, 0/1 out).
  void (*mask_and_in_range)(const std::int64_t* v, std::size_t n,
                            std::int64_t lo, std::int64_t hi,
                            std::uint8_t* sel);
  /// Number of set bytes in sel[0..n).  Bytes must be 0 or 1 (the shape
  /// mask_and_in_range produces) — the vector levels count by summing /
  /// popcounting rather than testing for non-zero.
  std::int64_t (*mask_count)(const std::uint8_t* sel, std::size_t n);
  /// Min of v[i] over sel[i] != 0, with *out_row the smallest index
  /// attaining it (earliest-row tie-break, same contract as the scalar
  /// argmin in kernel_min_row).  Returns false when nothing is selected.
  bool (*masked_min_i64)(const std::int64_t* v, const std::uint8_t* sel,
                         std::size_t n, std::int64_t* out_min,
                         std::size_t* out_row);
};

/// The scalar kernels (always available; also the tail/fallback routines
/// the vector levels delegate to).
const Kernels& scalar_kernels();

/// What the hardware supports (cpuid on x86, baseline NEON on aarch64).
/// Cached after the first call.
Level detect_level();

/// detect_level() capped by the JSTAR_SIMD env var ("off"/"scalar" pins
/// Scalar, "neon"/"avx2"/"avx512" cap at that level, unset/other keeps
/// the detected level).  Cached after the first call.
Level active_level();

/// Kernel table for `level`, degrading to the nearest available lower
/// level (e.g. asking for Avx512 in a binary whose AVX-512 TU was not
/// flag-enabled returns the AVX2 or scalar table).
const Kernels& kernels(Level level);

/// kernels(active_level()).
const Kernels& active_kernels();

/// JSTAR_MORSELS kill-switch (the morsel axis' analogue of JSTAR_SIMD):
/// false when the env var is off/scalar/0/false, true otherwise.  Cached
/// after the first call.  Stores AND this with ExecHints::morsels.
bool morsels_env_on();

/// JSTAR_EMIT kill-switch (the emit-buffer axis' analogue of JSTAR_SIMD /
/// JSTAR_MORSELS): false when the env var is off/0/false, true otherwise.
/// Cached after the first call.  The engine ANDs this with
/// EngineOptions::emit_buffer, so the env always wins — differential
/// harnesses pin the direct-put reference path from outside.
bool emit_env_on();

/// The level kernels(level) actually resolves to — what describe() and
/// the bench JSON report.
Level resolved_level(Level level);

// Per-ISA tables, defined in their own -m flag-gated TUs; nullptr when
// that TU was compiled without the ISA (non-x86 build, compiler without
// the flag).
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();
const Kernels* neon_kernels();

}  // namespace jstar::simd
