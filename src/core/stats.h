// Per-table usage statistics (§1.5: "a logging system for recording usage
// statistics about each table during a program run").  Fed to the viz
// module to emit annotated dependency graphs, and used by the phase
// breakdown bench.
#pragma once

#include <atomic>
#include <cstdint>

namespace jstar {

struct TableStats {
  std::atomic<std::int64_t> puts{0};           // tuples put by rules/initial
  std::atomic<std::int64_t> delta_inserts{0};  // entered the Delta tree
  std::atomic<std::int64_t> delta_dups{0};     // discarded as batch duplicates
  std::atomic<std::int64_t> gamma_inserts{0};  // stored into Gamma
  std::atomic<std::int64_t> gamma_dups{0};     // set-semantics duplicates
  std::atomic<std::int64_t> gamma_retired{0};  // retired by retain(N) GC
  // -noGamma throughput: tuples accepted by a NullStore but never stored,
  // so such tables show their traffic instead of a silent size() == 0.
  std::atomic<std::int64_t> gamma_passed_through{0};
  std::atomic<std::int64_t> fires{0};          // rule invocations triggered
  std::atomic<std::int64_t> queries{0};        // query operations served
  std::atomic<std::int64_t> pk_conflicts{0};   // primary-key invariant hits
  std::atomic<std::int64_t> index_lookups{0};  // queries routed via an index
  std::atomic<std::int64_t> full_scans{0};     // queries that had to scan
  // --- query-planner access paths (core/query_plan.h) ---
  std::atomic<std::int64_t> pk_probes{0};      // plans served by the pk index
  std::atomic<std::int64_t> range_scans{0};    // plans served by ordered range
  std::atomic<std::int64_t> empty_plans{0};    // contradictions: no data read
  std::atomic<std::int64_t> index_retired{0};  // index entries swept by GC
  std::atomic<std::int64_t> residual_rows{0};  // tuples a routed plan examined
  std::atomic<std::int64_t> residual_hits{0};  // ...of which passed the filter
  // --- columnar kernels (core/column_store.h) ---
  std::atomic<std::int64_t> columnar_kernels{0};   // queries served by kernels
  std::atomic<std::int64_t> columnar_rows{0};      // rows the kernels swept
  std::atomic<std::int64_t> columnar_selected{0};  // ...the masks selected
  // --- morsel-parallel execution (core/simd.h dispatch + ForkJoinPool) ---
  std::atomic<std::int64_t> morsel_runs{0};    // scans/kernels that split
  std::atomic<std::int64_t> morsel_splits{0};  // total morsels dispatched
  // --- retractions & upserts (counted tables, ROADMAP item 4) ---
  std::atomic<std::int64_t> retracts{0};        // retract deltas processed
  std::atomic<std::int64_t> gamma_erased{0};    // tuples removed from Gamma
  std::atomic<std::int64_t> retract_debts{0};   // retract-before-insert debts
  std::atomic<std::int64_t> annihilated{0};     // inserts cancelled by debt
  std::atomic<std::int64_t> upserts{0};         // upsert deltas processed
  std::atomic<std::int64_t> upsert_replaced{0}; // ...that displaced a tuple
  // --- batch-at-a-time rule firing (emit buffers + adaptive fire phase) ---
  std::atomic<std::int64_t> emit_flushes{0};    // flushes that bulk-appended
                                                // >= 1 record to Delta
  std::atomic<std::int64_t> emit_buffered{0};   // puts routed via emit buffers
  std::atomic<std::int64_t> inline_batches{0};  // fire phases run on the
                                                // coordinator despite a pool

  void reset() {
    puts = 0;
    delta_inserts = 0;
    delta_dups = 0;
    gamma_inserts = 0;
    gamma_dups = 0;
    gamma_retired = 0;
    gamma_passed_through = 0;
    fires = 0;
    queries = 0;
    pk_conflicts = 0;
    index_lookups = 0;
    full_scans = 0;
    pk_probes = 0;
    range_scans = 0;
    empty_plans = 0;
    index_retired = 0;
    residual_rows = 0;
    residual_hits = 0;
    columnar_kernels = 0;
    columnar_rows = 0;
    columnar_selected = 0;
    morsel_runs = 0;
    morsel_splits = 0;
    retracts = 0;
    gamma_erased = 0;
    retract_debts = 0;
    annihilated = 0;
    upserts = 0;
    upsert_replaced = 0;
    emit_flushes = 0;
    emit_buffered = 0;
    inline_batches = 0;
  }
};

}  // namespace jstar
