// AVX-512 kernel table (AVX512F only — no BW/VL, so it runs on every
// avx512f host).  CMake compiles this TU with -mavx512f when the
// compiler supports it on x86; otherwise the nullptr stub below keeps
// the binary portable.  Runtime selection is cpuid-gated in simd.cpp.
#include "core/simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <bit>
#include <cstring>
#include <limits>

namespace jstar::simd {

namespace {

inline __mmask8 in_range_mask(__m512i x, __m512i vlo, __m512i vhi) {
  const __mmask8 ge = _mm512_cmp_epi64_mask(x, vlo, _MM_CMPINT_NLT);
  const __mmask8 le = _mm512_cmp_epi64_mask(x, vhi, _MM_CMPINT_LE);
  return ge & le;
}

/// Expands a 4-bit lane mask into 4 bytes of 0/1 (see the AVX2 TU).
inline std::uint32_t spread4(std::uint32_t k) {
  return (k * 0x00204081u) & 0x01010101u;
}

/// Packs 8 bytes of 0/1 into an 8-bit lane mask.  The multiplier sends
/// byte j's low bit to product bit 56+j with no colliding contributions
/// (positions 56-7m+8j are pairwise distinct), so no carries.
inline __mmask8 pack8(const std::uint8_t* sel) {
  std::uint64_t w;
  std::memcpy(&w, sel, 8);
  return static_cast<__mmask8>((w * 0x0102040810204080ULL) >> 56);
}

inline std::uint8_t in_bound1(std::int64_t v, std::int64_t lo,
                              std::int64_t hi) {
  return static_cast<std::uint8_t>(static_cast<int>(v >= lo) &
                                   static_cast<int>(v <= hi));
}

std::int64_t avx512_count_in_range(const std::int64_t* v, std::size_t n,
                                   std::int64_t lo, std::int64_t hi) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  std::int64_t c = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(v + i);
    c += std::popcount(
        static_cast<unsigned>(in_range_mask(x, vlo, vhi)));
  }
  for (; i < n; ++i) c += in_bound1(v[i], lo, hi);
  return c;
}

void avx512_mask_and_in_range(const std::int64_t* v, std::size_t n,
                              std::int64_t lo, std::int64_t hi,
                              std::uint8_t* sel) {
  const __m512i vlo = _mm512_set1_epi64(lo);
  const __m512i vhi = _mm512_set1_epi64(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(v + i);
    const std::uint32_t k = in_range_mask(x, vlo, vhi);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(spread4(k & 0xF)) |
        (static_cast<std::uint64_t>(spread4(k >> 4)) << 32);
    std::uint64_t cur;
    std::memcpy(&cur, sel + i, 8);
    cur &= bytes;
    std::memcpy(sel + i, &cur, 8);
  }
  for (; i < n; ++i) sel[i] &= in_bound1(v[i], lo, hi);
}

std::int64_t avx512_mask_count(const std::uint8_t* sel, std::size_t n) {
  // Bytes are 0/1 by construction, so a 64-bit popcount counts 8 at once.
  std::int64_t c = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, sel + i, 8);
    c += std::popcount(w);
  }
  for (; i < n; ++i) c += sel[i];
  return c;
}

bool avx512_masked_min_i64(const std::int64_t* v, const std::uint8_t* sel,
                           std::size_t n, std::int64_t* out_min,
                           std::size_t* out_row) {
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  __m512i vmin = _mm512_set1_epi64(kMax);
  bool any = false;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 k = pack8(sel + i);
    if (k == 0) continue;
    any = true;
    const __m512i x = _mm512_loadu_si512(v + i);
    vmin = _mm512_mask_min_epi64(vmin, k, vmin, x);
  }
  // Horizontal min by hand: gcc-12's _mm512_reduce_min_epi64 expands
  // through _mm512_undefined_epi32 and trips -Wmaybe-uninitialized.
  alignas(64) std::int64_t lanes[8];
  _mm512_store_si512(lanes, vmin);
  std::int64_t best = kMax;
  for (const std::int64_t l : lanes) best = l < best ? l : best;
  bool found = any;
  for (; i < n; ++i) {
    if (!sel[i]) continue;
    found = true;
    if (v[i] < best) best = v[i];
  }
  if (!found) return false;
  // First selected row attaining the min — earliest-row tie-break.
  for (std::size_t r = 0; r < n; ++r) {
    if (sel[r] && v[r] == best) {
      *out_min = best;
      *out_row = r;
      return true;
    }
  }
  return false;  // unreachable
}

constexpr Kernels kAvx512{avx512_count_in_range, avx512_mask_and_in_range,
                          avx512_mask_count, avx512_masked_min_i64};

}  // namespace

const Kernels* avx512_kernels() { return &kAvx512; }

}  // namespace jstar::simd

#else  // !__AVX512F__

namespace jstar::simd {
const Kernels* avx512_kernels() { return nullptr; }
}  // namespace jstar::simd

#endif
