// A lock-striped Delta tree — this repo's follow-up to the paper's own
// diagnosis: "the inner loop of the program puts several million Estimate
// tuples through the Delta tree, which is still not sufficiently scalable
// to cope with a large number of threads contending for the same branches
// of the tree" (§6.5), "we are continuing to tune the JStar compiler and
// runtime to get more speed and better scalability" (§8).
//
// Design: S independent ordered maps ("stripes"), each behind its own
// mutex; a key is routed to a stripe by hash, so concurrent rule tasks
// inserting different keys contend on different locks instead of
// adjacent skip-list towers.  pop_min (coordinator-only, between
// batches) removes the global minimum over the stripe heads, preserving
// exactly the causality order of the single-tree backends.
//
// pop_min used to lock every stripe on every call; it now consults a
// coordinator-side head cache.  Each stripe carries an atomic version
// bumped (under the stripe lock) whenever its *key set* changes — a new
// key emplaced or a head popped; appends to an existing BatchNode leave
// the key set, and therefore the head, untouched.  pop_min re-peeks (and
// re-locks) only stripes whose version moved since the cached peek, so a
// steady-state pop loop over K live keys locks O(stripes touched since
// the last pop), not O(S).  A per-stripe atomic size counter gives
// empty() without locks at all.
//
// Duplicate handling is unchanged: equal keys route to the same stripe
// and merge into one BatchNode, so set-semantics dedup (footnote 5)
// keeps working through the per-table slices inside the node.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/batch.h"
#include "core/delta_tree.h"
#include "core/key.h"
#include "util/cache_pad.h"
#include "util/check.h"

namespace jstar {

class StripedDeltaTree final : public DeltaTree {
 public:
  explicit StripedDeltaTree(int stripes)
      : stripes_(static_cast<std::size_t>(stripes)),
        heads_(static_cast<std::size_t>(stripes)) {
    JSTAR_CHECK_MSG(stripes >= 1, "StripedDeltaTree needs >= 1 stripe");
  }

  BatchNode& get_or_insert(const DeltaKey& key) override {
    Stripe& s = stripe_for(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      it = s.map.emplace(key, std::make_unique<BatchNode>()).first;
      s.size.fetch_add(1, std::memory_order_relaxed);
      bump_version(s);
    }
    return *it->second;
  }

  /// Bulk variant: groups the keys by stripe first, then takes each
  /// touched stripe's lock exactly once — the emit-flush path pays one
  /// lock per stripe per flush instead of one per distinct key.  Unlike
  /// get_or_insert this is NOT safe to call from several threads at once
  /// (it reuses member scratch); the emit flush that drives it is a
  /// coordinator-only phase.
  void get_or_insert_batch(const DeltaKey* keys, std::size_t n,
                           BatchVisitor visit, void* ctx) override {
    if (n == 0) return;
    // Chain the key indices per stripe (first-appearance order within a
    // stripe) without allocating per stripe: head array + next links.
    scratch_head_.assign(stripes_.size(), -1);
    scratch_tail_.assign(stripes_.size(), -1);
    scratch_next_.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t si = hash_key(keys[i]) % stripes_.size();
      const auto ii = static_cast<std::ptrdiff_t>(i);
      if (scratch_head_[si] < 0) {
        scratch_head_[si] = ii;
      } else {
        scratch_next_[static_cast<std::size_t>(scratch_tail_[si])] = ii;
      }
      scratch_tail_[si] = ii;
    }
    for (std::size_t si = 0; si < stripes_.size(); ++si) {
      std::ptrdiff_t i = scratch_head_[si];
      if (i < 0) continue;
      Stripe& s = stripes_[si];
      std::lock_guard<std::mutex> lk(s.mu);
      bool grew = false;
      for (; i >= 0; i = scratch_next_[static_cast<std::size_t>(i)]) {
        const DeltaKey& key = keys[static_cast<std::size_t>(i)];
        auto it = s.map.find(key);
        if (it == s.map.end()) {
          it = s.map.emplace(key, std::make_unique<BatchNode>()).first;
          s.size.fetch_add(1, std::memory_order_relaxed);
          grew = true;
        }
        visit(ctx, static_cast<std::size_t>(i), *it->second);
      }
      if (grew) bump_version(s);
    }
  }

  bool pop_min(DeltaKey& key_out,
               std::unique_ptr<BatchNode>& node_out) override {
    // Coordinator-only phase.  Stripes whose version matches the cached
    // peek are trusted without locking; the rest are re-peeked under
    // their lock (same robustness to -noDelta rules that fire inline
    // during a batch as the old full-scan: those bump versions, which
    // forces a locked re-peek here).
    std::ptrdiff_t best = -1;
    for (std::size_t si = 0; si < stripes_.size(); ++si) {
      Stripe& s = stripes_[si];
      HeadCache& hc = heads_[si];
      const std::uint64_t v = s.version.load(std::memory_order_acquire);
      if (hc.version != v) {
        std::lock_guard<std::mutex> lk(s.mu);
        hc.version = s.version.load(std::memory_order_relaxed);
        hc.nonempty = !s.map.empty();
        if (hc.nonempty) hc.head = s.map.begin()->first;
      }
      if (!hc.nonempty) continue;
      if (best < 0 ||
          (hc.head <=> heads_[static_cast<std::size_t>(best)].head) ==
              std::strong_ordering::less) {
        best = static_cast<std::ptrdiff_t>(si);
      }
    }
    if (best < 0) return false;
    Stripe& s = stripes_[static_cast<std::size_t>(best)];
    HeadCache& hc = heads_[static_cast<std::size_t>(best)];
    std::lock_guard<std::mutex> lk(s.mu);
    // pop_min runs between batches (no concurrent inserts), so the
    // stripe's head is still the global minimum found by the scan.
    auto it = s.map.begin();
    key_out = it->first;
    node_out = std::move(it->second);
    s.map.erase(it);
    s.size.fetch_sub(1, std::memory_order_relaxed);
    bump_version(s);
    // Refresh the cache in place — the very next pop then trusts this
    // stripe without re-locking it.
    hc.version = s.version.load(std::memory_order_relaxed);
    hc.nonempty = !s.map.empty();
    if (hc.nonempty) hc.head = s.map.begin()->first;
    return true;
  }

  bool empty() const override {
    for (const Stripe& s : stripes_) {
      if (s.size.load(std::memory_order_acquire) != 0) return false;
    }
    return true;
  }

  std::size_t batch_count() const override {
    // All stripe locks held together, acquired in ascending stripe index
    // — one deterministic order shared with collect_garbage, so the two
    // can never deadlock against each other, and the count is a
    // consistent snapshot rather than a racy stripe-by-stripe sum.
    std::vector<std::unique_lock<std::mutex>> locks = lock_all();
    std::size_t n = 0;
    for (const Stripe& s : stripes_) n += s.map.size();
    return n;
  }

  void collect_garbage() override {
    // Nothing is deferred-freed in this backend, but the exclusive phase
    // is the natural point to re-validate the lock-free size counters
    // against the maps they shadow.  Same ascending-index all-stripe
    // locking order as batch_count.
    std::vector<std::unique_lock<std::mutex>> locks = lock_all();
    for (Stripe& s : stripes_) {
      JSTAR_CHECK_MSG(s.size.load(std::memory_order_relaxed) == s.map.size(),
                      "StripedDeltaTree stripe size cache out of sync");
      s.size.store(s.map.size(), std::memory_order_relaxed);
    }
  }

  int stripe_count() const { return static_cast<int>(stripes_.size()); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::map<DeltaKey, std::unique_ptr<BatchNode>, DeltaKeyLess> map;
    // Bumped under mu whenever the key set changes; lets pop_min trust
    // its head cache across calls.  size shadows map.size() for lock-free
    // empty().
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::size_t> size{0};
    char pad[kCacheLine];
  };

  // Coordinator-private head cache (pop_min is an exclusive phase; no
  // synchronization needed beyond the stripe versions).
  struct HeadCache {
    std::uint64_t version = ~std::uint64_t{0};
    bool nonempty = false;
    DeltaKey head;
  };

  static void bump_version(Stripe& s) {
    s.version.store(s.version.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

  std::vector<std::unique_lock<std::mutex>> lock_all() const {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (const Stripe& s : stripes_) locks.emplace_back(s.mu);
    return locks;
  }

  static std::size_t hash_key(const DeltaKey& k) {
    std::size_t h = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < k.size(); ++i) {
      h ^= static_cast<std::size_t>(k[i]) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }

  Stripe& stripe_for(const DeltaKey& k) {
    return stripes_[hash_key(k) % stripes_.size()];
  }

  mutable std::vector<Stripe> stripes_;
  std::vector<HeadCache> heads_;  // pop_min scratch (coordinator-only)
  // get_or_insert_batch scratch (callers are serialized per flush; the
  // flush itself is coordinator-only).
  std::vector<std::ptrdiff_t> scratch_head_, scratch_tail_, scratch_next_;
};

}  // namespace jstar
