// A lock-striped Delta tree — this repo's follow-up to the paper's own
// diagnosis: "the inner loop of the program puts several million Estimate
// tuples through the Delta tree, which is still not sufficiently scalable
// to cope with a large number of threads contending for the same branches
// of the tree" (§6.5), "we are continuing to tune the JStar compiler and
// runtime to get more speed and better scalability" (§8).
//
// Design: S independent ordered maps ("stripes"), each behind its own
// mutex; a key is routed to a stripe by hash, so concurrent rule tasks
// inserting different keys contend on different locks instead of
// adjacent skip-list towers.  pop_min (coordinator-only, between
// batches) peeks every stripe's head and removes the global minimum —
// O(S) per pop with S small and fixed, preserving exactly the causality
// order of the single-tree backends.
//
// Duplicate handling is unchanged: equal keys route to the same stripe
// and merge into one BatchNode, so set-semantics dedup (footnote 5)
// keeps working through the per-table slices inside the node.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/batch.h"
#include "core/delta_tree.h"
#include "core/key.h"
#include "util/cache_pad.h"
#include "util/check.h"

namespace jstar {

class StripedDeltaTree final : public DeltaTree {
 public:
  explicit StripedDeltaTree(int stripes)
      : stripes_(static_cast<std::size_t>(stripes)) {
    JSTAR_CHECK_MSG(stripes >= 1, "StripedDeltaTree needs >= 1 stripe");
  }

  BatchNode& get_or_insert(const DeltaKey& key) override {
    Stripe& s = stripe_for(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      it = s.map.emplace(key, std::make_unique<BatchNode>()).first;
    }
    return *it->second;
  }

  bool pop_min(DeltaKey& key_out,
               std::unique_ptr<BatchNode>& node_out) override {
    // Coordinator-only phase: rule tasks are quiescent, but take the
    // stripe locks anyway so the backend is robust to -noDelta rules
    // that fire inline during a batch.
    Stripe* best = nullptr;
    for (Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.map.empty()) continue;
      const DeltaKey& head = s.map.begin()->first;
      if (best == nullptr || (head <=> best_key_) == std::strong_ordering::less) {
        best = &s;
        best_key_ = head;
      }
    }
    if (best == nullptr) return false;
    std::lock_guard<std::mutex> lk(best->mu);
    // pop_min runs between batches (no concurrent inserts), so the
    // stripe's head is still the global minimum found by the scan.
    auto it = best->map.begin();
    key_out = it->first;
    node_out = std::move(it->second);
    best->map.erase(it);
    return true;
  }

  bool empty() const override {
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lk(s.mu);
      if (!s.map.empty()) return false;
    }
    return true;
  }

  std::size_t batch_count() const override {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  int stripe_count() const { return static_cast<int>(stripes_.size()); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::map<DeltaKey, std::unique_ptr<BatchNode>, DeltaKeyLess> map;
    char pad[kCacheLine];
  };

  static std::size_t hash_key(const DeltaKey& k) {
    std::size_t h = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < k.size(); ++i) {
      h ^= static_cast<std::size_t>(k[i]) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }

  Stripe& stripe_for(const DeltaKey& k) {
    return stripes_[hash_key(k) % stripes_.size()];
  }

  mutable std::vector<Stripe> stripes_;
  DeltaKey best_key_;  // scratch for pop_min (coordinator-only)
};

}  // namespace jstar
