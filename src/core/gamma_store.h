// Gamma database storage (§5, §6.2): one pluggable store per table.
//
// The paper's defaults are TreeSet (sequential) / ConcurrentSkipListSet
// (parallel), both "NavigableSet"s so ordered range queries work; §6.2 then
// shows overriding a table's structure — HashSet / ConcurrentHashMap when
// the query key is always fully known, or custom array-backed structures
// ("native arrays", §6.4) — *without touching the program*.  That
// late-commitment-to-data-structures story (§1.4) is reproduced here by
// TableDecl::store_factory overrides.
//
// Thread-safety contract: in parallel engine mode, insert/contains/scans
// may be called concurrently from rule tasks; implementations marked
// sequential are only used by the sequential engine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_set>

#include "concurrent/skip_list_set.h"
#include "concurrent/striped_hash_map.h"

namespace jstar {

/// Type-erased marker base so Engine can hold stores uniformly.
class GammaStoreBase {
 public:
  virtual ~GammaStoreBase() = default;
  virtual std::size_t size() const = 0;
};

/// Storage interface for one table's Gamma data.
template <typename T>
class GammaStore : public GammaStoreBase {
 public:
  /// Set-semantics insert; returns false when the tuple is a duplicate.
  virtual bool insert(const T& t) = 0;
  virtual bool contains(const T& t) const = 0;
  /// Visits every stored tuple (order depends on the structure).
  virtual void scan(const std::function<void(const T&)>& fn) const = 0;
  /// Visits tuples t with lo <= t < hi under the structure's order.
  /// Unordered stores fall back to a filtered full scan.
  virtual void scan_range(const T& lo, const T& hi,
                          const std::function<void(const T&)>& fn) const {
    scan([&](const T& t) {
      if (!(t < lo) && (t < hi)) fn(t);
    });
  }
  /// Visits tuples t with lo <= t, to the end of the structure's order —
  /// the open-above range-plan pushdown.  Unordered stores fall back to a
  /// filtered full scan.
  virtual void scan_from(const T& lo,
                         const std::function<void(const T&)>& fn) const {
    scan([&](const T& t) {
      if (!(t < lo)) fn(t);
    });
  }
  /// True when the store's iteration order is the tuple order and
  /// scan_range/scan_from seek instead of scanning — the query planner
  /// only compiles range plans against such stores.
  virtual bool ordered() const { return false; }
};

/// Sequential ordered store — the Java TreeSet default.
template <typename T>
class TreeSetStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t).second; }
  bool contains(const T& t) const override { return set_.count(t) != 0; }
  void scan(const std::function<void(const T&)>& fn) const override {
    for (const T& t : set_) fn(t);
  }
  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    for (auto it = set_.lower_bound(lo); it != set_.end() && *it < hi; ++it) {
      fn(*it);
    }
  }
  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    for (auto it = set_.lower_bound(lo); it != set_.end(); ++it) fn(*it);
  }
  bool ordered() const override { return true; }
  std::size_t size() const override { return set_.size(); }

 private:
  std::set<T> set_;
};

/// Concurrent ordered store — the ConcurrentSkipListSet default for
/// parallel code.
template <typename T>
class SkipListStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t); }
  bool contains(const T& t) const override { return set_.contains(t); }
  void scan(const std::function<void(const T&)>& fn) const override {
    set_.for_each(fn);
  }
  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    set_.for_range(lo, hi, fn);
  }
  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    set_.for_each_from(lo, fn);
  }
  bool ordered() const override { return true; }
  std::size_t size() const override { return set_.size(); }

 private:
  concurrent::SkipListSet<T> set_;
};

/// Sequential hash store — the HashSet alternative of §6.2.  Requires a
/// Hash functor; range scans degrade to filtered full scans.
template <typename T, typename Hash>
class HashSetStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t).second; }
  bool contains(const T& t) const override { return set_.count(t) != 0; }
  void scan(const std::function<void(const T&)>& fn) const override {
    for (const T& t : set_) fn(t);
  }
  std::size_t size() const override { return set_.size(); }

 private:
  std::unordered_set<T, Hash> set_;
};

/// Concurrent hash store — the ConcurrentHashMap alternative of §6.2.
template <typename T, typename Hash>
class StripedHashStore final : public GammaStore<T> {
 public:
  explicit StripedHashStore(std::size_t stripes = 64) : set_(stripes) {}
  bool insert(const T& t) override { return set_.insert(t); }
  bool contains(const T& t) const override { return set_.contains(t); }
  void scan(const std::function<void(const T&)>& fn) const override {
    set_.for_each(fn);
  }
  std::size_t size() const override { return set_.size(); }

 private:
  concurrent::StripedHashSet<T, Hash> set_;
};

/// The `-noGamma T` store (§5.1): tuples are never retained, so there is
/// no set-semantics dedup either; every insert "succeeds".  Useful for
/// trigger-only tables (e.g. Estimate in the Dijkstra program, §6.5) and
/// it "does help to reduce the active heap size".
template <typename T>
class NullStore final : public GammaStore<T> {
 public:
  bool insert(const T&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool contains(const T&) const override { return false; }
  void scan(const std::function<void(const T&)>&) const override {}
  std::size_t size() const override { return 0; }
  /// Number of tuples that passed through (for stats only).
  std::int64_t passed_through() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
};

}  // namespace jstar
