// Gamma database storage (§5, §6.2): one pluggable store per table.
//
// The paper's defaults are TreeSet (sequential) / ConcurrentSkipListSet
// (parallel), both "NavigableSet"s so ordered range queries work; §6.2 then
// shows overriding a table's structure — HashSet / ConcurrentHashMap when
// the query key is always fully known, or custom array-backed structures
// ("native arrays", §6.4) — *without touching the program*.  That
// late-commitment-to-data-structures story (§1.4) is reproduced here by
// TableDecl::store_factory overrides.
//
// Thread-safety contract: in parallel engine mode, insert/contains/scans
// may be called concurrently from rule tasks; implementations marked
// sequential are only used by the sequential engine.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>

#include "concurrent/skip_list_set.h"
#include "concurrent/striped_hash_map.h"

namespace jstar {

namespace sched {
class ForkJoinPool;
}  // namespace sched

/// Execution hints a table hands its store at configure time: the
/// engine's shared fork/join pool for morsel-parallel scans/kernels, and
/// the EngineOptions::simd / ::morsels flags.  The JSTAR_SIMD /
/// JSTAR_MORSELS env kill-switches are ANDed in by the stores themselves
/// (core/simd.h), so the env var always wins — differential harnesses
/// can pin the scalar/sequential reference path from outside.
struct ExecHints {
  sched::ForkJoinPool* pool = nullptr;
  bool simd = true;
  bool morsels = true;
};

/// Morsel geometry, shared by every substrate that implements
/// scan_morsels and by the columnar kernels' internal splits.  kRows is
/// the fixed morsel size — fixed (not ncores-derived) so the partition,
/// and with it every ordered reduction, is deterministic across pool
/// sizes.  Tables below kSequentialCutoff run as one morsel on the
/// calling thread, keeping small-table latency unchanged.
namespace morsel {
inline constexpr std::size_t kRows = 64 * 1024;
inline constexpr std::size_t kSequentialCutoff = 2 * kRows;
inline constexpr std::size_t count(std::size_t n) {
  return n == 0 ? 1 : (n + kRows - 1) / kRows;
}
}  // namespace morsel

/// Type-erased marker base so Engine can hold stores uniformly.
class GammaStoreBase {
 public:
  virtual ~GammaStoreBase() = default;
  virtual std::size_t size() const = 0;
  /// Human-readable substrate name, surfaced in TableStats / run logs so
  /// a tuning session can see which structure each table actually got.
  virtual std::string describe() const { return "custom"; }
  /// Execution hints (pool + SIMD/morsel switches).  Stores that cannot
  /// use them ignore the call.
  virtual void set_exec_hints(const ExecHints&) {}
};

/// Retention capability — stores that can drop tuples when a retain(N)
/// window advances: the bucketed EpochWindowStore (core/window_store.h)
/// erases whole epoch buckets, the flat substrate (core/flat_store.h)
/// compacts its arrays in place.  Table<T> drives either through this
/// interface at epoch boundaries.
template <typename T>
class RetiringStore {
 public:
  virtual ~RetiringStore() = default;
  /// Retires every tuple whose epoch is <= threshold; returns the count.
  virtual std::int64_t retire_up_to(std::int64_t threshold) = 0;
  /// Callback invoked once per retired tuple, after the store has
  /// released its own lock (the listener takes index-shard locks that
  /// queries hold while re-entering the store — notifying under the
  /// store lock would close a lock-order cycle).  This is how
  /// epoch-aware index maintenance works: the owning table sweeps
  /// retired tuples out of its secondary indexes, so indexes forget
  /// exactly when Gamma does.
  virtual void set_retire_listener(std::function<void(const T&)> fn) = 0;
};

/// Storage interface for one table's Gamma data.
template <typename T>
class GammaStore : public GammaStoreBase {
 public:
  /// Set-semantics insert; returns false when the tuple is a duplicate.
  virtual bool insert(const T& t) = 0;
  virtual bool contains(const T& t) const = 0;
  /// Visits every stored tuple (order depends on the structure).
  virtual void scan(const std::function<void(const T&)>& fn) const = 0;
  /// Visits tuples t with lo <= t < hi under the structure's order.
  /// Unordered stores fall back to a filtered full scan.
  virtual void scan_range(const T& lo, const T& hi,
                          const std::function<void(const T&)>& fn) const {
    scan([&](const T& t) {
      if (!(t < lo) && (t < hi)) fn(t);
    });
  }
  /// Visits tuples t with lo <= t, to the end of the structure's order —
  /// the open-above range-plan pushdown.  Unordered stores fall back to a
  /// filtered full scan.
  virtual void scan_from(const T& lo,
                         const std::function<void(const T&)>& fn) const {
    scan([&](const T& t) {
      if (!(t < lo)) fn(t);
    });
  }
  /// True when the store's iteration order is the tuple order and
  /// scan_range/scan_from seek instead of scanning — the query planner
  /// only compiles range plans against such stores.
  virtual bool ordered() const { return false; }
  /// Chunked scan pushdown (§6.4): visits the stored tuples as contiguous
  /// [data, data + n) spans, so hot loops run over cache-lined arrays and
  /// pay the type-erasure cost once per chunk instead of once per tuple.
  /// The default adapter degrades to one-tuple chunks over scan(); stores
  /// answering chunked() hand out real multi-tuple spans.
  virtual void scan_chunks(
      const std::function<void(const T*, std::size_t)>& fn) const {
    scan([&fn](const T& t) { fn(&t, 1); });
  }
  /// True when scan_chunks delivers genuinely contiguous multi-tuple
  /// spans — Table<T> then routes its scans through the chunked path.
  virtual bool chunked() const { return false; }
  /// Morsel-parallel scan pushdown: splits the stored tuples into
  /// fixed-size morsels and runs `body(data, n, morsel)` over them on
  /// the hinted fork/join pool.  `plan(morsels)` fires exactly once,
  /// before any body call, so the caller can size a per-morsel partials
  /// array; a morsel may deliver several spans (columnar reconstitution
  /// chunks), all carrying the same morsel index, and two morsels never
  /// share an index — per-slot writes need no synchronisation.  Morsel
  /// indexes follow storage order, so combining partials 0..morsels-1
  /// keeps sequential reduction order deterministic.  Returns false
  /// (nothing ran) when the store cannot morselize or the hints disable
  /// it — the caller falls back to scan_chunks; a `true` run with the
  /// table below the sequential threshold is a single morsel on the
  /// calling thread.  Body runs under the store's read lock, same
  /// re-entry contract as scan.
  virtual bool scan_morsels(
      const std::function<void(std::size_t)>& plan,
      const std::function<void(const T*, std::size_t, std::size_t)>& body)
      const {
    (void)plan;
    (void)body;
    return false;
  }
  /// Erase/tombstone contract (retractions, ROADMAP item 4): removes `t`
  /// if present; returns true exactly when a stored tuple was removed.
  /// After erase(t) returns true, contains(t) is false and no scan (plain,
  /// range, or chunked) may deliver t again — substrates that defer
  /// physical removal (flat anti-merge dead sets, open-addressing
  /// tombstones, columnar compaction) must hide the tuple immediately.
  /// Stores that cannot erase keep the default and report !erasable();
  /// Table<T> refuses counted()/retract() on top of those.
  virtual bool erase(const T&) { return false; }
  /// True when erase() actually removes tuples (NullStore and custom
  /// insert-only stores say false).
  virtual bool erasable() const { return false; }
};

/// Sequential ordered store — the Java TreeSet default.
template <typename T>
class TreeSetStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t).second; }
  bool contains(const T& t) const override { return set_.count(t) != 0; }
  void scan(const std::function<void(const T&)>& fn) const override {
    for (const T& t : set_) fn(t);
  }
  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    for (auto it = set_.lower_bound(lo); it != set_.end() && *it < hi; ++it) {
      fn(*it);
    }
  }
  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    for (auto it = set_.lower_bound(lo); it != set_.end(); ++it) fn(*it);
  }
  bool ordered() const override { return true; }
  bool erase(const T& t) override { return set_.erase(t) != 0; }
  bool erasable() const override { return true; }
  std::size_t size() const override { return set_.size(); }
  std::string describe() const override { return "tree-set"; }

 private:
  std::set<T> set_;
};

/// Concurrent ordered store — the ConcurrentSkipListSet default for
/// parallel code.
template <typename T>
class SkipListStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t); }
  bool contains(const T& t) const override { return set_.contains(t); }
  void scan(const std::function<void(const T&)>& fn) const override {
    set_.for_each(fn);
  }
  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    set_.for_range(lo, hi, fn);
  }
  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    set_.for_each_from(lo, fn);
  }
  bool ordered() const override { return true; }
  bool erase(const T& t) override { return set_.erase(t); }
  bool erasable() const override { return true; }
  std::size_t size() const override { return set_.size(); }
  std::string describe() const override { return "skip-list"; }

 private:
  concurrent::SkipListSet<T> set_;
};

/// Sequential hash store — the HashSet alternative of §6.2.  Requires a
/// Hash functor; range scans degrade to filtered full scans.
template <typename T, typename Hash>
class HashSetStore final : public GammaStore<T> {
 public:
  bool insert(const T& t) override { return set_.insert(t).second; }
  bool contains(const T& t) const override { return set_.count(t) != 0; }
  void scan(const std::function<void(const T&)>& fn) const override {
    for (const T& t : set_) fn(t);
  }
  bool erase(const T& t) override { return set_.erase(t) != 0; }
  bool erasable() const override { return true; }
  std::size_t size() const override { return set_.size(); }
  std::string describe() const override { return "hash-set"; }

 private:
  std::unordered_set<T, Hash> set_;
};

/// Concurrent hash store — the ConcurrentHashMap alternative of §6.2.
template <typename T, typename Hash>
class StripedHashStore final : public GammaStore<T> {
 public:
  /// Stripe count for this machine: 4x the hardware concurrency (so
  /// concurrent inserters rarely collide on a stripe lock), clamped to
  /// [16, 256]; the underlying set rounds up to a power of two.  A table
  /// on a 64-core box gets 256 stripes, a 2-core CI runner gets 16 —
  /// instead of the previous hardcoded 64 either way.
  static std::size_t default_stripes() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t want = 4 * static_cast<std::size_t>(hw == 0 ? 4 : hw);
    return std::clamp<std::size_t>(want, 16, 256);
  }

  /// `stripes == 0` picks default_stripes() for this machine.
  explicit StripedHashStore(std::size_t stripes = 0)
      : set_(stripes == 0 ? default_stripes() : stripes) {}
  bool insert(const T& t) override { return set_.insert(t); }
  bool contains(const T& t) const override { return set_.contains(t); }
  void scan(const std::function<void(const T&)>& fn) const override {
    set_.for_each(fn);
  }
  bool erase(const T& t) override { return set_.erase(t); }
  bool erasable() const override { return true; }
  std::size_t size() const override { return set_.size(); }
  /// The stripe count actually chosen (after power-of-two rounding),
  /// surfaced through describe() into run logs.
  std::size_t stripes() const { return set_.stripes(); }
  std::string describe() const override {
    return "striped-hash(" + std::to_string(stripes()) + ")";
  }

 private:
  concurrent::StripedHashSet<T, Hash> set_;
};

/// The `-noGamma T` store (§5.1): tuples are never retained, so there is
/// no set-semantics dedup either; every insert "succeeds".  Useful for
/// trigger-only tables (e.g. Estimate in the Dijkstra program, §6.5) and
/// it "does help to reduce the active heap size".
template <typename T>
class NullStore final : public GammaStore<T> {
 public:
  bool insert(const T&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool contains(const T&) const override { return false; }
  void scan(const std::function<void(const T&)>&) const override {}
  std::size_t size() const override { return 0; }
  std::string describe() const override { return "null"; }
  /// Number of tuples that passed through (for stats only).
  std::int64_t passed_through() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
};

}  // namespace jstar
