#include "core/engine.h"

#include <algorithm>

namespace jstar {

namespace {

/// Snapshot of the emission counters summed over a table set, for
/// RunReport deltas (run() may be called repeatedly on one database).
struct EmitCounters {
  std::int64_t flushes = 0;
  std::int64_t buffered = 0;
  std::int64_t inline_batches = 0;
};

EmitCounters emit_counters(
    const std::vector<std::unique_ptr<TableBase>>& tables) {
  EmitCounters out;
  for (const auto& t : tables) {
    const TableStats& s = t->stats();
    out.flushes += s.emit_flushes.load(std::memory_order_relaxed);
    out.buffered += s.emit_buffered.load(std::memory_order_relaxed);
    out.inline_batches += s.inline_batches.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace

Engine::Engine(EngineOptions opts) : opts_(std::move(opts)) {
  JSTAR_CHECK_MSG(opts_.threads >= 1, "threads must be >= 1");
}

Engine::Engine(EngineOptions opts, sched::ForkJoinPool* shared_pool)
    : opts_(std::move(opts)),
      external_pool_(opts_.sequential ? nullptr : shared_pool) {
  JSTAR_CHECK_MSG(opts_.threads >= 1, "threads must be >= 1");
}

Engine::~Engine() = default;

void Engine::prepare() {
  if (prepared_) return;
  prepared_ = true;
  if (opts_.sequential) {
    delta_ = std::make_unique<MapDeltaTree>();
  } else {
    if (opts_.delta_stripes >= 1) {
      delta_ = std::make_unique<StripedDeltaTree>(opts_.delta_stripes);
    } else {
      delta_ = std::make_unique<SkipDeltaTree>();
    }
    if (external_pool_ == nullptr) {
      pool_ = std::make_unique<sched::ForkJoinPool>(opts_.threads);
    }
  }
  edges_.resize(tables_.size());
  TableBase::RuntimeEnv env;
  env.delta = delta_.get();
  env.pool = pool();
  env.edges = &edges_;
  env.orders = &orders_;
  env.causality_checks = opts_.causality_checks;
  env.parallel = !opts_.sequential;
  env.task_per_rule = opts_.task_per_rule;
  env.epoch = &epoch_;
  env.simd = opts_.simd;
  env.morsels = opts_.morsels;
  env.emit_buffer = opts_.emit_buffer;
  env.inline_fire_cutoff = opts_.inline_fire_cutoff;
  // configure() registers each table's orderby literals, so it must run
  // before the order relation is frozen into ranks.
  for (auto& t : tables_) {
    t->configure(env, opts_.no_delta.count(t->name()) != 0,
                 opts_.no_gamma.count(t->name()) != 0);
  }
  orders_.freeze();
}

void Engine::process_batch(const DeltaKey& key, BatchNode& node,
                           RunReport& report) {
  // Phase A: move every tuple of this equivalence class into Gamma (all
  // tables), recording freshness.  Running A for all tables before any B
  // makes positive queries at timestamp == now deterministic: every tuple
  // of the class is visible before any rule of the class runs.
  const std::size_t slots = node.per_table.size();
  std::vector<std::vector<std::uint8_t>> keep(slots);
  std::int64_t batch_tuples = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (!node.per_table[i]) continue;
    batch_tuples += static_cast<std::int64_t>(node.per_table[i]->count());
    tables_[i]->batch_insert_phase(*node.per_table[i], keep[i]);
  }
  // Phase B: effects + rule firing, morsel-spanned fork/join tasks (§5;
  // sub-threshold batches run inline on this thread).
  for (std::size_t i = 0; i < slots; ++i) {
    if (!node.per_table[i]) continue;
    tables_[i]->batch_fire_phase(*node.per_table[i], keep[i], key);
  }
  // The batch's rule emissions sit in per-thread buffers; the fire-phase
  // join above is the happens-before edge that hands them to this
  // thread, which bulk-appends them before the next pop_min.
  flush_emits();
  ++report.batches;
  report.tuples += batch_tuples;
  report.max_batch = std::max(report.max_batch, batch_tuples);
}

void Engine::flush_emits() {
  for (auto& t : tables_) t->flush_emits();
}

bool Engine::step(RunReport* report) {
  prepare();
  // Puts made through a hand-built RuleCtx since the last batch are
  // still buffered; surface them before deciding whether Delta is empty.
  flush_emits();
  DeltaKey key;
  std::unique_ptr<BatchNode> node;
  if (!delta_->pop_min(key, node)) return false;
  const EmitCounters before = emit_counters(tables_);
  RunReport scratch;
  RunReport& out = report != nullptr ? *report : scratch;
  process_batch(key, *node, out);
  const EmitCounters after = emit_counters(tables_);
  out.emit_flushes += after.flushes - before.flushes;
  out.emit_buffered += after.buffered - before.buffered;
  out.inline_batches += after.inline_batches - before.inline_batches;
  return true;
}

std::int64_t Engine::begin_epoch() {
  prepare();
  const std::int64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& t : tables_) t->retire_epochs(e);
  return e;
}

RunReport Engine::run() {
  prepare();
  RunReport report;
  WallTimer timer;
  // Surface any puts buffered outside a run (hand-built RuleCtx callers)
  // before the first pop decides whether there is work at all.
  flush_emits();
  const EmitCounters before = emit_counters(tables_);
  DeltaKey key;
  std::unique_ptr<BatchNode> node;
  int since_gc = 0;
  while (delta_->pop_min(key, node)) {
    process_batch(key, *node, report);
    node.reset();
    if (!opts_.sequential && ++since_gc >= opts_.gc_interval_batches) {
      delta_->collect_garbage();
      since_gc = 0;
    }
  }
  const EmitCounters after = emit_counters(tables_);
  report.emit_flushes = after.flushes - before.flushes;
  report.emit_buffered = after.buffered - before.buffered;
  report.inline_batches = after.inline_batches - before.inline_batches;
  report.seconds = timer.seconds();
  return report;
}

}  // namespace jstar
