#include "core/engine.h"

#include <algorithm>

namespace jstar {

Engine::Engine(EngineOptions opts) : opts_(std::move(opts)) {
  JSTAR_CHECK_MSG(opts_.threads >= 1, "threads must be >= 1");
}

Engine::Engine(EngineOptions opts, sched::ForkJoinPool* shared_pool)
    : opts_(std::move(opts)),
      external_pool_(opts_.sequential ? nullptr : shared_pool) {
  JSTAR_CHECK_MSG(opts_.threads >= 1, "threads must be >= 1");
}

Engine::~Engine() = default;

void Engine::prepare() {
  if (prepared_) return;
  prepared_ = true;
  if (opts_.sequential) {
    delta_ = std::make_unique<MapDeltaTree>();
  } else {
    if (opts_.delta_stripes >= 1) {
      delta_ = std::make_unique<StripedDeltaTree>(opts_.delta_stripes);
    } else {
      delta_ = std::make_unique<SkipDeltaTree>();
    }
    if (external_pool_ == nullptr) {
      pool_ = std::make_unique<sched::ForkJoinPool>(opts_.threads);
    }
  }
  edges_.resize(tables_.size());
  TableBase::RuntimeEnv env;
  env.delta = delta_.get();
  env.pool = pool();
  env.edges = &edges_;
  env.orders = &orders_;
  env.causality_checks = opts_.causality_checks;
  env.parallel = !opts_.sequential;
  env.task_per_rule = opts_.task_per_rule;
  env.epoch = &epoch_;
  env.simd = opts_.simd;
  env.morsels = opts_.morsels;
  // configure() registers each table's orderby literals, so it must run
  // before the order relation is frozen into ranks.
  for (auto& t : tables_) {
    t->configure(env, opts_.no_delta.count(t->name()) != 0,
                 opts_.no_gamma.count(t->name()) != 0);
  }
  orders_.freeze();
}

void Engine::process_batch(const DeltaKey& key, BatchNode& node,
                           RunReport& report) {
  // Phase A: move every tuple of this equivalence class into Gamma (all
  // tables), recording freshness.  Running A for all tables before any B
  // makes positive queries at timestamp == now deterministic: every tuple
  // of the class is visible before any rule of the class runs.
  const std::size_t slots = node.per_table.size();
  std::vector<std::vector<std::uint8_t>> keep(slots);
  std::int64_t batch_tuples = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (!node.per_table[i]) continue;
    batch_tuples += static_cast<std::int64_t>(node.per_table[i]->count());
    tables_[i]->batch_insert_phase(*node.per_table[i], keep[i]);
  }
  // Phase B: effects + rule firing, one fork/join task per tuple (§5).
  for (std::size_t i = 0; i < slots; ++i) {
    if (!node.per_table[i]) continue;
    tables_[i]->batch_fire_phase(*node.per_table[i], keep[i], key);
  }
  ++report.batches;
  report.tuples += batch_tuples;
  report.max_batch = std::max(report.max_batch, batch_tuples);
}

bool Engine::step(RunReport* report) {
  prepare();
  DeltaKey key;
  std::unique_ptr<BatchNode> node;
  if (!delta_->pop_min(key, node)) return false;
  RunReport scratch;
  process_batch(key, *node, report != nullptr ? *report : scratch);
  return true;
}

std::int64_t Engine::begin_epoch() {
  prepare();
  const std::int64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& t : tables_) t->retire_epochs(e);
  return e;
}

RunReport Engine::run() {
  prepare();
  RunReport report;
  WallTimer timer;
  DeltaKey key;
  std::unique_ptr<BatchNode> node;
  int since_gc = 0;
  while (delta_->pop_min(key, node)) {
    process_batch(key, *node, report);
    node.reset();
    if (!opts_.sequential && ++since_gc >= opts_.gc_interval_batches) {
      delta_->collect_garbage();
      since_gc = 0;
    }
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace jstar
