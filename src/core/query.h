// Typed query predicates — the C++ embedding of JStar's boolean lambda
// query terms (§1.4: "part of the query term is typically written using a
// boolean lambda expression").
//
// Predicates built from field matchers compose with && and ||, and they
// *describe* themselves: each predicate knows which fields it constrains
// to equality, so the engine can route a query through a secondary index
// when one exists (see table.h / index support) instead of scanning —
// reproducing the paper's point that query structure, not the program
// text, should pick the data structure.
//
//   using q = jstar::query;
//   auto p = q::eq(&Pv::year, 2012) && q::lt(&Pv::power, 100);
//   table.find_if(p);   // works anywhere a callable is expected
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace jstar::query {

/// One equality binding discovered in a predicate: "field #tag == value".
/// Tags are the member-pointer identity erased to an opaque void*; index
/// registration uses the same tag so lookups can be matched to indexes.
struct EqBinding {
  const void* field_tag = nullptr;
  std::int64_t value = 0;
};

namespace detail {

/// Stable opaque tag for a pointer-to-member.  Two mentions of &T::x give
/// the same tag; distinct fields give distinct tags.
template <typename T, typename M>
const void* field_tag(M T::*member) {
  // Function-local statics keyed by the template instantiation would
  // collapse all members of the same type; instead hash the member
  // pointer's bytes into a per-instantiation registry.
  static_assert(sizeof(member) <= 16);
  union {
    M T::*m;
    unsigned char bytes[16];
  } u{};
  u.m = member;
  // The bytes uniquely identify the member within (T, M); combine with a
  // per-instantiation anchor so (T1::x, T2::y) of equal offsets differ.
  static const char anchor = 0;
  std::size_t h = reinterpret_cast<std::size_t>(&anchor);
  for (unsigned char b : u.bytes) h = h * 131 + b;
  return reinterpret_cast<const void*>(h);
}

}  // namespace detail

/// A predicate over T: callable, plus the list of equality bindings it
/// implies (for index routing).  And/Or compose; Or discards bindings
/// (a disjunction no longer pins a field to one value).
template <typename T>
class Pred {
 public:
  Pred(std::function<bool(const T&)> fn, std::vector<EqBinding> eqs = {})
      : fn_(std::move(fn)), eqs_(std::move(eqs)) {}

  bool operator()(const T& t) const { return fn_(t); }
  const std::vector<EqBinding>& eq_bindings() const { return eqs_; }

  friend Pred operator&&(const Pred& a, const Pred& b) {
    std::vector<EqBinding> eqs = a.eqs_;
    eqs.insert(eqs.end(), b.eqs_.begin(), b.eqs_.end());
    return Pred(
        [fa = a.fn_, fb = b.fn_](const T& t) { return fa(t) && fb(t); },
        std::move(eqs));
  }
  friend Pred operator||(const Pred& a, const Pred& b) {
    return Pred(
        [fa = a.fn_, fb = b.fn_](const T& t) { return fa(t) || fb(t); });
  }
  friend Pred operator!(const Pred& a) {
    return Pred([fa = a.fn_](const T& t) { return !fa(t); });
  }

 private:
  std::function<bool(const T&)> fn_;
  std::vector<EqBinding> eqs_;
};

/// field == value — the indexable equality matcher.
template <typename T, typename M, typename V>
Pred<T> eq(M T::*member, V value) {
  EqBinding b{detail::field_tag(member), static_cast<std::int64_t>(value)};
  return Pred<T>(
      [member, value](const T& t) { return t.*member == value; }, {b});
}

template <typename T, typename M, typename V>
Pred<T> ne(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member != value; });
}
template <typename T, typename M, typename V>
Pred<T> lt(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member < value; });
}
template <typename T, typename M, typename V>
Pred<T> le(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member <= value; });
}
template <typename T, typename M, typename V>
Pred<T> gt(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member > value; });
}
template <typename T, typename M, typename V>
Pred<T> ge(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member >= value; });
}

/// value in [lo, hi)
template <typename T, typename M, typename V>
Pred<T> between(M T::*member, V lo, V hi) {
  return Pred<T>([member, lo, hi](const T& t) {
    return t.*member >= lo && t.*member < hi;
  });
}

/// Arbitrary lambda escape hatch (no index routing information).
template <typename T, typename Fn>
Pred<T> lambda(Fn&& fn) {
  return Pred<T>(std::function<bool(const T&)>(std::forward<Fn>(fn)));
}

/// The tag for a member, exported so indexes can register under it.
template <typename T, typename M>
const void* field_tag(M T::*member) {
  return detail::field_tag(member);
}

}  // namespace jstar::query
