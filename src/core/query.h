// Typed query predicates — the C++ embedding of JStar's boolean lambda
// query terms (§1.4: "part of the query term is typically written using a
// boolean lambda expression").
//
// Predicates built from field matchers compose with && and ||, and they
// *describe* themselves: each predicate knows which fields it constrains
// to equality (EqBinding) and which to an interval (RangeBinding), so the
// query planner (core/query_plan.h) can route a query through a primary
// key, a secondary index or an ordered range scan instead of a full Gamma
// scan — reproducing the paper's point that query structure, not the
// program text, should pick the data structure.
//
// Conjunction normalises its bindings: equalities are deduped by field
// tag, intervals on the same field are intersected, and an unsatisfiable
// combination (eq(f, a) && eq(f, b), an empty interval, or an equality
// outside its field's interval) marks the predicate as *never true*, which
// the planner compiles to the always-empty access path.
//
//   using q = jstar::query;
//   auto p = q::eq(&Pv::year, 2012) && q::lt(&Pv::power, 100);
//   table.find_if(p);   // works anywhere a callable is expected
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <type_traits>
#include <vector>

namespace jstar::query {

/// One equality binding discovered in a predicate: "field #tag == value".
/// Tags are the member-pointer identity erased to an opaque void*; index
/// registration uses the same tag so lookups can be matched to indexes.
struct EqBinding {
  const void* field_tag = nullptr;
  std::int64_t value = 0;
};

/// One interval binding: "lo <= field #tag <= hi" (both inclusive; the
/// INT64_MIN/INT64_MAX sentinels mean unbounded).  lt/le/gt/ge/between
/// produce these; conjunction intersects intervals with the same tag.
struct RangeBinding {
  const void* field_tag = nullptr;
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  bool empty() const { return lo > hi; }
};

namespace detail {

/// Stable opaque tag for a pointer-to-member.  Two mentions of &T::x give
/// the same tag; distinct fields give distinct tags — guaranteed, not just
/// probable.  Tags are the planner's field identity: a collision would
/// silently bind a predicate to the wrong pk/index and return wrong rows,
/// so hashing the member-pointer bytes (as an earlier version did) is not
/// an option.  Instead the exact byte pattern is interned: the registry is
/// a function-local static, so each (T, M) instantiation owns a disjoint
/// node pool (distinct types can never alias), and within an instantiation
/// two distinct members differ in their bytes and intern to distinct
/// nodes.  std::set nodes are stable under later inserts, and the registry
/// is leaked so tags stay valid through static destruction.
template <typename T, typename M>
const void* field_tag(M T::*member) {
  static_assert(sizeof(member) <= 16);
  std::array<unsigned char, 16> key{};  // zero-padded exact bytes
  std::memcpy(key.data(), &member, sizeof(member));
  static std::mutex mu;
  static auto& interned = *new std::set<std::array<unsigned char, 16>>();
  std::lock_guard<std::mutex> lk(mu);
  return static_cast<const void*>(&*interned.insert(key).first);
}

/// True when every value of X survives a round trip through int64 —
/// signed integrals and anything narrower than 64 bits.  uint64 is out:
/// values above INT64_MAX would wrap, falsifying interval arithmetic.
template <typename X>
inline constexpr bool int64_exact_v =
    std::is_integral_v<X> && (std::is_signed_v<X> || sizeof(X) < 8);

/// Bindings describe field/value pairs as int64 — sound only when both
/// the member and the probe value convert exactly (a truncated double or
/// a wrapped uint64 would make interval arithmetic, and hence
/// never-detection and range-plan bounds, lie about the callable).
/// Other matchers simply carry no bindings and plan as residual scans.
template <typename M, typename V>
inline constexpr bool bindable_v = int64_exact_v<M> && int64_exact_v<V>;

}  // namespace detail

/// A predicate over T: callable, plus the equality and interval bindings
/// it implies (for planner routing) and a `never` flag for conjunctions
/// provably unsatisfiable from the bindings alone.  And composes and
/// normalises bindings; Or and Not discard them (a disjunction no longer
/// pins a field, and negation flips satisfiability in ways the bindings
/// cannot express).
template <typename T>
class Pred {
 public:
  Pred(std::function<bool(const T&)> fn, std::vector<EqBinding> eqs = {},
       std::vector<RangeBinding> ranges = {}, bool never = false,
       bool exact = false)
      : fn_(std::move(fn)), eqs_(std::move(eqs)), ranges_(std::move(ranges)),
        never_(never), exact_(exact) {}

  bool operator()(const T& t) const { return fn_(t); }
  const std::vector<EqBinding>& eq_bindings() const { return eqs_; }
  const std::vector<RangeBinding>& range_bindings() const { return ranges_; }
  /// True when the bindings prove the predicate matches no tuple (e.g.
  /// eq(f, 1) && eq(f, 2)).  The callable agrees — it would return false
  /// for every input — so the planner may skip the data entirely.
  bool never() const { return never_; }
  /// True when the bindings *are* the predicate: the callable returns true
  /// exactly when every binding holds, with nothing left over.  Bindable
  /// eq/lt/le/gt/ge/between matchers are exact, conjunction preserves
  /// exactness, and everything that drops routing information (||, !, ne,
  /// lambdas, unbindable fields) clears it.  Columnar kernels rely on
  /// this: an exact predicate can be evaluated entirely against bound
  /// columns, skipping the per-tuple residual callable.
  bool binding_exact() const { return exact_; }

  friend Pred operator&&(const Pred& a, const Pred& b) {
    std::vector<EqBinding> eqs = a.eqs_;
    std::vector<RangeBinding> ranges = a.ranges_;
    bool never = a.never_ || b.never_;
    // Dedupe equalities by field tag; two different pinned values on the
    // same field can never both hold.
    for (const EqBinding& nb : b.eqs_) {
      bool seen = false;
      for (const EqBinding& ob : eqs) {
        if (ob.field_tag != nb.field_tag) continue;
        seen = true;
        if (ob.value != nb.value) never = true;
        break;
      }
      if (!seen) eqs.push_back(nb);
    }
    // Intersect intervals per field tag.
    for (const RangeBinding& nr : b.ranges_) {
      bool seen = false;
      for (RangeBinding& orr : ranges) {
        if (orr.field_tag != nr.field_tag) continue;
        seen = true;
        orr.lo = std::max(orr.lo, nr.lo);
        orr.hi = std::min(orr.hi, nr.hi);
        break;
      }
      if (!seen) ranges.push_back(nr);
    }
    // An empty interval, or an equality outside its field's interval, is a
    // contradiction.
    for (const RangeBinding& r : ranges) {
      if (r.empty()) never = true;
      for (const EqBinding& e : eqs) {
        if (e.field_tag == r.field_tag &&
            (e.value < r.lo || e.value > r.hi)) {
          never = true;
        }
      }
    }
    return Pred(
        [fa = a.fn_, fb = b.fn_](const T& t) { return fa(t) && fb(t); },
        std::move(eqs), std::move(ranges), never, a.exact_ && b.exact_);
  }
  friend Pred operator||(const Pred& a, const Pred& b) {
    return Pred(
        [fa = a.fn_, fb = b.fn_](const T& t) { return fa(t) || fb(t); });
  }
  friend Pred operator!(const Pred& a) {
    return Pred([fa = a.fn_](const T& t) { return !fa(t); });
  }

 private:
  std::function<bool(const T&)> fn_;
  std::vector<EqBinding> eqs_;
  std::vector<RangeBinding> ranges_;
  bool never_ = false;
  bool exact_ = false;  // bindings fully describe the callable
};

/// field == value — the indexable equality matcher.
template <typename T, typename M, typename V>
Pred<T> eq(M T::*member, V value) {
  if constexpr (detail::bindable_v<M, V>) {
    EqBinding b{detail::field_tag(member), static_cast<std::int64_t>(value)};
    return Pred<T>(
        [member, value](const T& t) { return t.*member == value; }, {b}, {},
        /*never=*/false, /*exact=*/true);
  } else {
    return Pred<T>(
        [member, value](const T& t) { return t.*member == value; });
  }
}

template <typename T, typename M, typename V>
Pred<T> ne(M T::*member, V value) {
  return Pred<T>([member, value](const T& t) { return t.*member != value; });
}
template <typename T, typename M, typename V>
Pred<T> lt(M T::*member, V value) {
  const auto fn = [member, value](const T& t) { return t.*member < value; };
  if constexpr (detail::bindable_v<M, V>) {
    const auto v = static_cast<std::int64_t>(value);
    RangeBinding r{detail::field_tag(member),
                   std::numeric_limits<std::int64_t>::min(),
                   v == std::numeric_limits<std::int64_t>::min() ? v : v - 1};
    const bool never = v == std::numeric_limits<std::int64_t>::min();
    return Pred<T>(fn, {}, {r}, never, /*exact=*/true);
  } else {
    return Pred<T>(fn);
  }
}
template <typename T, typename M, typename V>
Pred<T> le(M T::*member, V value) {
  const auto fn = [member, value](const T& t) { return t.*member <= value; };
  if constexpr (detail::bindable_v<M, V>) {
    RangeBinding r{detail::field_tag(member),
                   std::numeric_limits<std::int64_t>::min(),
                   static_cast<std::int64_t>(value)};
    return Pred<T>(fn, {}, {r}, /*never=*/false, /*exact=*/true);
  } else {
    return Pred<T>(fn);
  }
}
template <typename T, typename M, typename V>
Pred<T> gt(M T::*member, V value) {
  const auto fn = [member, value](const T& t) { return t.*member > value; };
  if constexpr (detail::bindable_v<M, V>) {
    const auto v = static_cast<std::int64_t>(value);
    RangeBinding r{detail::field_tag(member),
                   v == std::numeric_limits<std::int64_t>::max() ? v : v + 1,
                   std::numeric_limits<std::int64_t>::max()};
    const bool never = v == std::numeric_limits<std::int64_t>::max();
    return Pred<T>(fn, {}, {r}, never, /*exact=*/true);
  } else {
    return Pred<T>(fn);
  }
}
template <typename T, typename M, typename V>
Pred<T> ge(M T::*member, V value) {
  const auto fn = [member, value](const T& t) { return t.*member >= value; };
  if constexpr (detail::bindable_v<M, V>) {
    RangeBinding r{detail::field_tag(member),
                   static_cast<std::int64_t>(value),
                   std::numeric_limits<std::int64_t>::max()};
    return Pred<T>(fn, {}, {r}, /*never=*/false, /*exact=*/true);
  } else {
    return Pred<T>(fn);
  }
}

/// value in [lo, hi)
template <typename T, typename M, typename V>
Pred<T> between(M T::*member, V lo, V hi) {
  const auto fn = [member, lo, hi](const T& t) {
    return t.*member >= lo && t.*member < hi;
  };
  if constexpr (detail::bindable_v<M, V>) {
    const auto l = static_cast<std::int64_t>(lo);
    const auto h = static_cast<std::int64_t>(hi);
    RangeBinding r{detail::field_tag(member), l,
                   h == std::numeric_limits<std::int64_t>::min() ? h : h - 1};
    return Pred<T>(fn, {}, {r}, r.empty(), /*exact=*/true);
  } else {
    return Pred<T>(fn);
  }
}

/// Arbitrary lambda escape hatch (no planner routing information).
template <typename T, typename Fn>
Pred<T> lambda(Fn&& fn) {
  return Pred<T>(std::function<bool(const T&)>(std::forward<Fn>(fn)));
}

/// The tag for a member, exported so indexes can register under it.
template <typename T, typename M>
const void* field_tag(M T::*member) {
  return detail::field_tag(member);
}

}  // namespace jstar::query
