// The Delta set (§3, §5): a multi-level priority queue over pending tuples,
// ordered by the causality ordering, with set-semantics deduplication.
//
// Two backends mirror the paper's generated code:
//   * MapDeltaTree  — java.util.TreeMap analogue, for -sequential code;
//   * SkipDeltaTree — ConcurrentSkipListMap analogue, for parallel code
//     (workers insert concurrently while a batch executes; the coordinator
//     pops the minimum between batches, which is an exclusive phase).
//
// Footnote 5 of the paper explains why this is a map and not a plain
// priority queue: duplicate tuples must be removed as they are inserted.
// The per-table dedup sets live inside the BatchNode slices.
#pragma once

#include <map>
#include <memory>

#include "concurrent/skip_list_map.h"
#include "core/batch.h"
#include "core/key.h"

namespace jstar {

class DeltaTree {
 public:
  virtual ~DeltaTree() = default;

  /// Returns the batch node for `key`, creating it if absent.
  /// Thread-safety depends on the backend (see class comment).
  virtual BatchNode& get_or_insert(const DeltaKey& key) = 0;

  /// Callback shape for get_or_insert_batch: invoked once per input key
  /// with its index and resolved node.  A raw pointer + context instead of
  /// std::function keeps the per-group dispatch allocation-free on the
  /// emit-flush hot path.
  using BatchVisitor = void (*)(void* ctx, std::size_t i, BatchNode& node);

  /// Bulk get_or_insert: resolves keys[0..n) and calls visit(ctx, i, node)
  /// for each.  Keys need not be distinct or sorted; equal keys resolve to
  /// the same node.  Same thread-safety as get_or_insert.  The default
  /// loops; backends override to amortize locking (the striped tree takes
  /// each stripe lock once per call instead of once per key).
  virtual void get_or_insert_batch(const DeltaKey* keys, std::size_t n,
                                   BatchVisitor visit, void* ctx) {
    for (std::size_t i = 0; i < n; ++i) visit(ctx, i, get_or_insert(keys[i]));
  }

  /// EXCLUSIVE PHASE.  Removes the minimal batch; returns false when empty.
  virtual bool pop_min(DeltaKey& key_out, std::unique_ptr<BatchNode>& node_out) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t batch_count() const = 0;

  /// EXCLUSIVE PHASE.  Reclaims memory retired by concurrent operations.
  virtual void collect_garbage() {}
};

/// Sequential backend (TreeMap analogue).  Not thread-safe.
class MapDeltaTree final : public DeltaTree {
 public:
  BatchNode& get_or_insert(const DeltaKey& key) override {
    auto it = map_.find(key);
    if (it == map_.end()) {
      it = map_.emplace(key, std::make_unique<BatchNode>()).first;
    }
    return *it->second;
  }

  bool pop_min(DeltaKey& key_out, std::unique_ptr<BatchNode>& node_out) override {
    if (map_.empty()) return false;
    auto it = map_.begin();
    key_out = it->first;
    node_out = std::move(it->second);
    map_.erase(it);
    return true;
  }

  bool empty() const override { return map_.empty(); }
  std::size_t batch_count() const override { return map_.size(); }

  /// Devirtualized loop: one red-black descent per key, no virtual call
  /// per key.
  void get_or_insert_batch(const DeltaKey* keys, std::size_t n,
                           BatchVisitor visit, void* ctx) override {
    for (std::size_t i = 0; i < n; ++i) {
      auto it = map_.find(keys[i]);
      if (it == map_.end()) {
        it = map_.emplace(keys[i], std::make_unique<BatchNode>()).first;
      }
      visit(ctx, i, *it->second);
    }
  }

 private:
  std::map<DeltaKey, std::unique_ptr<BatchNode>, DeltaKeyLess> map_;
};

/// Concurrent backend (ConcurrentSkipListMap analogue).  get_or_insert is
/// safe from any number of rule tasks; pop_min/collect_garbage are
/// coordinator-only, between batches.
class SkipDeltaTree final : public DeltaTree {
 public:
  ~SkipDeltaTree() override {
    map_.for_each([](const DeltaKey&, BatchNode* const& node) { delete node; });
  }

  BatchNode& get_or_insert(const DeltaKey& key) override {
    // The factory runs exactly once per successfully inserted node (after
    // predecessor validation), so there is no allocate-and-discard race.
    return *map_.get_or_insert(key, [] { return new BatchNode(); });
  }

  bool pop_min(DeltaKey& key_out, std::unique_ptr<BatchNode>& node_out) override {
    BatchNode* node = nullptr;
    if (!map_.pop_min(key_out, node)) return false;
    node_out.reset(node);
    return true;
  }

  bool empty() const override { return map_.empty(); }
  std::size_t batch_count() const override { return map_.size(); }
  void collect_garbage() override { map_.collect_garbage(); }

  /// Devirtualized loop over the skip list (concurrent-safe like
  /// get_or_insert; towers for equal keys merge).
  void get_or_insert_batch(const DeltaKey* keys, std::size_t n,
                           BatchVisitor visit, void* ctx) override {
    for (std::size_t i = 0; i < n; ++i) {
      visit(ctx, i,
            *map_.get_or_insert(keys[i], [] { return new BatchNode(); }));
    }
  }

 private:
  concurrent::SkipListMap<DeltaKey, BatchNode*, DeltaKeyLess> map_;
};

}  // namespace jstar
