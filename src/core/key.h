// Delta-tree keys: the flattened form of a tuple's `orderby` list.
//
// The paper's Delta tree is a multi-level structure: each level is either a
// capitalised literal name (ordered by the program's `order` declarations),
// a `seq` field (sorted sequentially), or a `par` field (unordered, i.e.
// excluded from the ordering).  Two tuples are in the same equivalence
// class — and may therefore run in parallel — iff their comparable levels
// are equal.
//
// We flatten the comparable levels (literal ranks and seq field values)
// into one lexicographically-compared integer vector; `par` fields are
// simply not emitted.  This is observationally equivalent to the tree: the
// order over equivalence classes is identical, and the leaf "sets of
// tuples" of the paper become the batches keyed by equal DeltaKeys.
#pragma once

#include <cstdint>
#include <string>

#include "util/small_vec.h"

namespace jstar {

/// A fully comparable timestamp: literal stratum ranks and seq field values
/// flattened into one lexicographic vector.  A strict prefix compares less.
using DeltaKey = SmallVec<std::int64_t, 6>;

inline std::string to_string(const DeltaKey& k) {
  std::string s = "(";
  for (std::size_t i = 0; i < k.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(k[i]);
  }
  s += ")";
  return s;
}

struct DeltaKeyLess {
  bool operator()(const DeltaKey& a, const DeltaKey& b) const {
    return (a <=> b) == std::strong_ordering::less;
  }
};

}  // namespace jstar
