// The JStar execution engine (§3, §5): an improved incremental
// pseudo-naive bottom-up evaluator [Smith & Utting 1999; Ullman 1989].
//
// Lifecycle of a tuple (Fig 3):
//   1. a rule (or initial put) creates it → Delta set,
//   2. it is taken out of Delta in causality order, moved into Gamma,
//      and triggers applicable rules,
//   3. other rules may query it from Gamma,
//   4. (garbage collection of dead tuples — manual lifetime hints here,
//      matching "currently, this program analysis is not automated").
//
// The parallelisation strategy is the paper's *all-minimums* strategy: at
// each step the engine removes every minimal tuple from the Delta tree and
// executes them all in parallel as fork/join tasks, in two sub-phases per
// batch (insert-into-Gamma, then fire-rules) so that positive queries at
// timestamp == now are deterministic.
//
// EngineOptions is the C++ form of the paper's compiler/runtime hints
// (-sequential, --threads=N, -noDelta T, -noGamma T): strategy lives apart
// from the program, so the same program object can be benchmarked under
// any strategy (§2 stage 3).
#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/delta_tree.h"
#include "core/striped_delta_tree.h"
#include "core/orderby.h"
#include "core/table.h"
#include "sched/fork_join_pool.h"
#include "util/timer.h"

namespace jstar {

struct EngineOptions {
  /// Generate-sequential-code analogue: std::map Delta, TreeSet Gammas,
  /// no thread pool.
  bool sequential = false;
  /// Fork/join pool size for parallel mode (--threads=N).
  int threads = 4;
  /// Dynamic law-of-causality enforcement on every put.
  bool causality_checks = true;
  /// -noDelta T: tuples of these tables bypass the Delta tree and fire
  /// their rules immediately (§5.1).
  std::set<std::string> no_delta;
  /// -noGamma T: tuples of these tables are never stored (§5.1).
  std::set<std::string> no_gamma;
  /// Reclaim Delta-tree garbage every N batches (parallel mode only).
  int gc_interval_batches = 64;
  /// §5.2 "additional parallelism": spawn one fork/join task per
  /// (tuple, rule) pair instead of one task per tuple.  The paper's
  /// default strategy creates "only one task for that tuple" even when it
  /// triggers several rules; this flag enables the finer granularity.
  bool task_per_rule = false;
  /// Delta-tree backend override for parallel mode: 0 keeps the default
  /// concurrent skip list; >= 1 installs the lock-striped tree with this
  /// many stripes (the scalability experiment motivated by §6.5's
  /// "threads contending for the same branches of the tree").
  int delta_stripes = 0;
  /// SIMD dispatch for the columnar kernels (core/simd.h).  false pins
  /// every store to the scalar kernel table.  The JSTAR_SIMD env var is
  /// ANDed in by the dispatch layer, so the env kill-switch always wins:
  /// this flag can force scalar, never re-enable vectorized kernels.
  bool simd = true;
  /// Morsel-parallel scans/kernels on the engine's fork/join pool.
  /// false keeps every scan sequential; JSTAR_MORSELS=off wins likewise.
  bool morsels = true;
  /// Batch-at-a-time rule emission: RuleCtx::put/retract/upsert append
  /// to per-(thread, table) buffers (causality checked eagerly, no lock
  /// taken) and reach the Delta tree in one bulk append per table per
  /// batch.  Results are bit-identical to direct puts at any worker
  /// count; false restores the per-put enqueue.  JSTAR_EMIT=off wins
  /// likewise (the differential harnesses pin the reference path with
  /// it).
  bool emit_buffer = true;
  /// Batches whose (tuples x rules) work is at or under this cutoff run
  /// their insert/fire phases inline on the coordinator, skipping the
  /// pool round-trip that dominates deep small-batch chains.  0 restores
  /// the legacy always-dispatch behaviour (bench_rule_fire's baseline).
  std::int64_t inline_fire_cutoff = 16;
};

/// Summary of one Engine::run().
struct RunReport {
  std::int64_t batches = 0;        // Delta equivalence classes processed
  std::int64_t tuples = 0;         // tuples taken out of Delta
  std::int64_t max_batch = 0;      // largest equivalence class
  double seconds = 0.0;
  // Batch-at-a-time emission over the run, summed across tables
  // (TableStats deltas): bulk flushes that reached the Delta tree, rule
  // puts that travelled through emit buffers, and fire phases that ran
  // inline on the coordinator instead of a pool round-trip.
  std::int64_t emit_flushes = 0;
  std::int64_t emit_buffered = 0;
  std::int64_t inline_batches = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});

  /// Constructs an engine that runs its parallel strategy on `shared_pool`
  /// instead of a private pool (non-owning; must outlive the engine).  This
  /// is how N sharded engines share one fork/join pool, so the machine's
  /// thread count no longer multiplies by the shard count.  Ignored in
  /// sequential mode; `opts.threads` is likewise ignored when set.
  Engine(EngineOptions opts, sched::ForkJoinPool* shared_pool);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a table.  The returned reference is stable for the life of
  /// the engine.  Must happen before the first put.
  template <typename T>
  Table<T>& table(TableDecl<T> decl) {
    JSTAR_CHECK_MSG(!prepared_, "table registered after execution started");
    auto owned = std::make_unique<Table<T>>(std::move(decl));
    Table<T>& ref = *owned;
    ref.id_ = static_cast<int>(tables_.size());
    tables_.push_back(std::move(owned));
    return ref;
  }

  /// Declares a causality chain over orderby literals
  /// (`order Req < PvWatts < SumMonth`, Fig 4).
  void order(const std::vector<std::string>& chain) {
    JSTAR_CHECK_MSG(!prepared_, "order declared after execution started");
    orders_.declare_chain(chain);
  }

  /// Attaches a rule triggered by tuples of `t`.
  template <typename T>
  void rule(Table<T>& t, std::string name,
            typename Table<T>::Rule fn) {
    JSTAR_CHECK_MSG(!prepared_, "rule added after execution started");
    t.add_rule(std::move(name), std::move(fn));
  }

  /// Initial put (a top-level `put` command).  Always goes through the
  /// Delta set; triggers prepare() on first use.
  template <typename T>
  void put(Table<T>& t, const T& tuple) {
    prepare();
    t.stats().puts.fetch_add(1, std::memory_order_relaxed);
    t.enqueue_delta(t.key_of(tuple), tuple);
  }

  /// Initial retract: decrements the tuple's multiplicity; processed by
  /// the next run(), where hitting zero removes it from Gamma and fires
  /// the sign -1 cascade.  Requires TableDecl::counted().
  template <typename T>
  void retract(Table<T>& t, const T& tuple) {
    prepare();
    t.seed_signed(tuple, -1);
  }

  /// Initial upsert: "make the row for this tuple's primary key be
  /// exactly this tuple", displacing (and retracting downstream of) any
  /// different incumbent.  Requires counted() and a primary_key.
  template <typename T>
  void upsert(Table<T>& t, const T& tuple) {
    prepare();
    t.seed_signed(tuple, Table<T>::kUpsertSign);
  }

  /// Runs the program to quiescence (empty Delta set).  May be called
  /// repeatedly: later puts + runs continue the same database, which is
  /// how event-driven input (§3) is expressed.
  RunReport run();

  /// Opens the next streaming epoch: bumps the epoch counter and retires
  /// Gamma tuples that fell out of any retain(N) window (Fig 3 step 4
  /// generalised to wall-clock streams).  Gamma otherwise survives across
  /// epochs — run() stays incremental — and the Delta set is empty between
  /// epochs by construction (run() drains it).  Returns the new epoch.
  /// Long-lived callers (src/stream/streaming.h) call this once per
  /// ingestion slice; one-shot batch programs never need to.
  std::int64_t begin_epoch();

  /// The current epoch: 0 until the first begin_epoch().  Rules observe it
  /// through RuleCtx::epoch().
  std::int64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Processes exactly one Delta batch (the minimal equivalence class).
  /// Returns false when the Delta set is empty.  Useful for debuggers and
  /// for visualising execution frontiers batch by batch.
  bool step(RunReport* report = nullptr);

  const EngineOptions& options() const { return opts_; }
  OrderResolver& orders() { return orders_; }
  const EdgeMatrix& edges() const { return edges_; }
  DeltaTree& delta() { return *delta_; }
  sched::ForkJoinPool* pool() {
    return external_pool_ != nullptr ? external_pool_ : pool_.get();
  }

  std::vector<TableBase*> all_tables() const {
    std::vector<TableBase*> out;
    out.reserve(tables_.size());
    for (const auto& t : tables_) out.push_back(t.get());
    return out;
  }

  /// Finalises declarations (freezes the order relation, builds stores and
  /// the Delta backend).  Implicit on first put/run; idempotent.
  void prepare();

 private:
  void process_batch(const DeltaKey& key, BatchNode& node, RunReport& report);
  /// Drains every table's emit buffers into the Delta tree (table-id
  /// order, so the flush sequence is deterministic).  Called after each
  /// batch's fire phase and before the first pop of run()/step(), which
  /// also covers puts made through a hand-built RuleCtx between runs.
  void flush_emits();

  EngineOptions opts_;
  OrderResolver orders_;
  EdgeMatrix edges_;
  std::vector<std::unique_ptr<TableBase>> tables_;
  std::unique_ptr<DeltaTree> delta_;
  std::unique_ptr<sched::ForkJoinPool> pool_;        // owned (private) pool
  sched::ForkJoinPool* external_pool_ = nullptr;     // shared pool, not owned
  bool prepared_ = false;
  std::atomic<std::int64_t> epoch_{0};               // streaming epoch clock
};

}  // namespace jstar
