#include "stream/streaming.h"

#include <algorithm>
#include <cstdio>

namespace jstar::stream {

void StreamReport::absorb(const EpochStats& e) {
  ++epochs;
  ingested += e.ingested;
  batches += e.batches;
  tuples += e.tuples;
  messages += e.messages;
  mail_epochs += e.mail_epochs;
  gamma_retired += e.gamma_retired;
  index_retired += e.index_retired;
  emit_buffered += e.emit_buffered;
  emit_flushes += e.emit_flushes;
  inline_batches += e.inline_batches;
  max_epoch_ingested = std::max(max_epoch_ingested, e.ingested);
  busy_seconds += e.seconds;
}

double StreamReport::tuples_per_second() const {
  return busy_seconds > 0.0 ? static_cast<double>(ingested) / busy_seconds
                            : 0.0;
}

std::string StreamReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld epochs, %lld ingested (max %lld/epoch), %lld batches, "
                "%lld tuples, %lld retired (+%lld index), %.3f s busy, "
                "%.0f tuples/s",
                static_cast<long long>(epochs),
                static_cast<long long>(ingested),
                static_cast<long long>(max_epoch_ingested),
                static_cast<long long>(batches),
                static_cast<long long>(tuples),
                static_cast<long long>(gamma_retired),
                static_cast<long long>(index_retired), busy_seconds,
                tuples_per_second());
  return std::string(buf);
}

}  // namespace jstar::stream
