// Streaming execution — the long-lived form of the engine (ROADMAP north
// star: a service absorbing heavy traffic, not a one-shot batch job).
//
// The paper's engine (§3, §5) runs a program to fixpoint exactly once; its
// event-driven contract (later puts + runs continue the same database) is
// already incremental per batch.  This subsystem closes the loop into a
// *stream*: external producers publish tuples from any thread into a
// multi-producer Disruptor ring (src/disruptor/mp_ring_buffer.h — Table 1's
// "multiple producers" alternative used as the ingestion edge), and a
// long-lived consumer thread chops the stream into **epochs**:
//
//   wait for input → begin_epoch → drain a bounded slice of the ring →
//   deliver as initial puts → run the all-minimums strategy to fixpoint →
//   publish per-epoch stats → repeat.
//
// Correctness is the same pseudo-naive delta argument as the sharded
// mailboxes: stream input only enters the engine *between*
// runs-to-quiescence, as initial puts (the empty causality timestamp), so
// an epoch's causality keys never compare against a previous epoch's, and
// set semantics makes any redelivered tuple a no-op.  Hence the streaming
// fixpoint over any epoch slicing equals the one-shot batch fixpoint —
// pinned tuple-for-tuple by tests/test_streaming_differential.cpp across
// sequential / BSP / async × shard counts.
//
// Memory stays bounded under an infinite stream via TableDecl::retain(N)
// (windowed Gamma GC over the Engine::begin_epoch clock, generalising
// -noGamma; see core/table.h and core/window_store.h).
//
// Streams over TableDecl::counted() tables also carry **retractions and
// upserts**: publish_retract()/publish_upsert() ride the same ordered ring
// as publish(), each epoch slice preserves per-producer publish order, and
// the signed tuples enter the engine through the SetupHooks deliver_signed
// lane (seed_signed / the sharded mailbox signed lane), so the streaming
// fixpoint over any slicing still equals the one-shot batch fixpoint of
// the same net counts.
//
// Consumer API: rules emit results through the Emit handle passed to the
// setup callback; callers take them with poll() (non-blocking) or drain()
// (block until every tuple published so far has been folded into a
// completed epoch fixpoint, then poll).  report() snapshots cumulative
// StreamReport stats; poll_epochs() drains the per-epoch log.
//
// Two front-ends over the same epoch loop (detail::StreamBase):
//   * StreamingEngine<T, Out>        — one Engine (sequential or parallel),
//   * ShardedStreamingEngine<T, Out> — a ShardedEngine cluster (BSP or
//     async schedule, one shared fork/join pool), with a route function
//     assigning each ingested tuple to its owner shard.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "disruptor/mp_ring_buffer.h"
#include "dist/sharded.h"
#include "util/check.h"
#include "util/timer.h"

namespace jstar::stream {

/// Strategy knobs of the streaming substrate itself (the wrapped engine
/// keeps its own EngineOptions / ShardedOptions — strategy stays apart
/// from the program at every layer).
struct StreamOptions {
  /// Ingestion ring capacity (power of two).  Producers block when the
  /// consumer falls this far behind — natural backpressure.
  std::size_t ring_capacity = 1024;
  /// Upper bound on tuples drained per epoch.  Small slices keep retain(N)
  /// windows fine-grained and epoch latency low; large slices amortise the
  /// per-epoch fixpoint cost (bench_streaming sweeps this).
  std::int64_t max_epoch_tuples = 512;
  /// How the consumer (and blocked producers) wait on the ring.
  disruptor::WaitStrategy wait = disruptor::WaitStrategy::Blocking;
  /// Completed-epoch log retention for poll_epochs(); the oldest entries
  /// are dropped (and counted) beyond this, so an unpolled stream does not
  /// leak.
  std::size_t epoch_log_capacity = 1024;
};

/// Stats of one completed epoch.
struct EpochStats {
  std::int64_t epoch = 0;     ///< Engine::begin_epoch clock value
  std::int64_t ingested = 0;  ///< tuples drained from the ring
  std::int64_t batches = 0;   ///< Delta batches of the fixpoint run
  std::int64_t tuples = 0;    ///< tuples taken out of Delta
  std::int64_t messages = 0;  ///< cross-shard messages (sharded only)
  /// Non-empty mailbox drain epochs inside the cluster fixpoint (sharded
  /// only) — the fabric-churn counter the async batching collapses.  Idle
  /// polls never inflate it (ShardStats::drains semantics).
  std::int64_t mail_epochs = 0;
  std::int64_t gamma_retired = 0;  ///< retain(N) tuples GC'd at epoch open
  std::int64_t index_retired = 0;  ///< secondary-index entries swept with them
  std::int64_t emit_buffered = 0;  ///< rule puts routed via emit buffers
  std::int64_t emit_flushes = 0;   ///< bulk Delta flushes of the fixpoint
  std::int64_t inline_batches = 0; ///< fire phases run on the coordinator
  double seconds = 0.0;       ///< deliver + run wall time
};

/// Cumulative stats of a stream (all epochs so far).
struct StreamReport {
  std::int64_t epochs = 0;
  std::int64_t ingested = 0;
  std::int64_t batches = 0;
  std::int64_t tuples = 0;
  std::int64_t messages = 0;
  std::int64_t mail_epochs = 0;  ///< cumulative cluster drain epochs
  std::int64_t gamma_retired = 0;  ///< cumulative retain(N) GC volume
  std::int64_t index_retired = 0;  ///< cumulative index entries swept
  std::int64_t emit_buffered = 0;  ///< cumulative buffered rule puts
  std::int64_t emit_flushes = 0;   ///< cumulative bulk Delta flushes
  std::int64_t inline_batches = 0; ///< cumulative coordinator-inline fires
  std::int64_t max_epoch_ingested = 0;
  std::int64_t epoch_log_dropped = 0;  ///< per-epoch entries aged out
  double busy_seconds = 0.0;

  void absorb(const EpochStats& e);
  /// Sustained ingest rate over busy time (the bench headline).
  double tuples_per_second() const;
  std::string summary() const;
};

namespace detail {

/// Snapshot of one engine's cumulative retirement counters, summed over
/// its tables.  The epoch loop diffs these around begin_epoch() to report
/// per-epoch GC volume (retain(N) Gamma retirement + the secondary-index
/// sweep that rides along).
struct RetiredTotals {
  std::int64_t gamma = 0;
  std::int64_t index = 0;
};

inline RetiredTotals retired_totals(Engine& eng) {
  RetiredTotals r;
  for (const TableBase* t : eng.all_tables()) {
    r.gamma += t->stats().gamma_retired.load(std::memory_order_relaxed);
    r.index += t->stats().index_retired.load(std::memory_order_relaxed);
  }
  return r;
}

/// Ring envelope: a stream tuple or the shutdown poison pill stop() sends
/// through the same ordered channel (so shutdown drains everything
/// published before it).  `sign` carries the tuple's delta polarity for
/// counted tables: +1 insert, -1 retraction, kUpsertSign upsert (same
/// sentinel as Table<T>::kUpsertSign).  Retractions ride the same ordered
/// ring as insertions, so a publish()/publish_retract() pair from one
/// producer is folded into epochs in publish order.
template <typename T>
struct Envelope {
  T value{};
  std::int32_t sign = 1;
  bool poison = false;
};

/// Upsert sentinel for Envelope::sign; equals Table<T>::kUpsertSign.
constexpr std::int32_t kStreamUpsertSign =
    std::numeric_limits<std::int32_t>::min();

/// The multi-producer ingestion edge: publish() from any thread, one
/// consumer draining bounded slices in publish order.
template <typename T>
class IngestQueue {
 public:
  IngestQueue(std::size_t capacity, disruptor::WaitStrategy wait)
      : ring_(capacity, wait) {
    cid_ = ring_.add_consumer();
  }

  void publish(const T& t, std::int32_t sign = 1) {
    const std::int64_t seq = ring_.claim();
    Envelope<T>& env = ring_.slot(seq);
    env.value = t;
    env.sign = sign;
    env.poison = false;
    ring_.publish(seq);
  }

  void publish_poison() {
    const std::int64_t seq = ring_.claim();
    ring_.slot(seq).poison = true;
    ring_.publish(seq);
  }

  /// Consumer side: blocks until at least one envelope is published.
  void wait_ready() { (void)ring_.wait_for(next_); }

  /// True when an envelope is ready without blocking.
  bool ready() const { return ring_.is_available(next_); }

  /// Hands up to `max` envelopes to `deliver` in publish order (poison
  /// pills are counted into *saw_poison instead).  Must be preceded by
  /// wait_ready()/ready().  Returns the number of tuples delivered.
  std::int64_t consume_slice(
      std::int64_t max,
      const std::function<void(const T&, std::int32_t)>& deliver,
      bool* saw_poison) {
    const std::int64_t hi = ring_.wait_for(next_);
    const std::int64_t slice_hi = std::min(hi, next_ + max - 1);
    std::int64_t n = 0;
    for (std::int64_t s = next_; s <= slice_hi; ++s) {
      Envelope<T>& env = ring_.slot(s);
      if (env.poison) {
        *saw_poison = true;
      } else {
        deliver(env.value, env.sign);
        ++n;
      }
    }
    // Commit frees the slots for producers; the epoch's tuples are already
    // copied into the engine's Delta set by deliver.
    ring_.commit(cid_, slice_hi);
    consumed_ = slice_hi;
    next_ = slice_hi + 1;
    return n;
  }

  /// Highest sequence any producer has claimed (the drain() barrier
  /// target) and the highest sequence the consumer has taken.
  std::int64_t claimed() const { return ring_.claimed(); }
  std::int64_t consumed() const { return consumed_; }

 private:
  disruptor::MpRingBuffer<Envelope<T>> ring_;
  int cid_ = -1;
  std::int64_t next_ = 0;       // consumer-only
  std::int64_t consumed_ = -1;  // consumer-only
};

/// CRTP core shared by StreamingEngine and ShardedStreamingEngine: the
/// ingestion ring, the epoch loop thread, the output channel and the
/// stats/drain plumbing.  Derived implements the three epoch hooks:
///   std::int64_t epoch_begin();
///   void epoch_deliver(const T&, std::int32_t sign);
///   EpochStats epoch_fixpoint();   // fills batches/tuples/messages
template <typename T, typename Out, typename Derived>
class StreamBase {
 public:
  using Emit = std::function<void(const Out&)>;

  /// Publishes one tuple into the stream.  Callable from any thread while
  /// the stream runs; blocks when the ring is full (backpressure).  Must
  /// not race stop().
  void publish(const T& t) { queue_.publish(t); }

  /// Publishes a retraction: the tuple's multiplicity is decremented when
  /// its epoch runs, and hitting zero removes it from Gamma and fires the
  /// sign -1 cascade.  Requires a signed delivery hook (the SetupHooks
  /// constructor form) routing into a TableDecl::counted() table.
  /// Ordered with publish() from the same producer thread.
  void publish_retract(const T& t) { queue_.publish(t, -1); }

  /// Publishes an upsert: "make the row for this tuple's primary key be
  /// exactly this tuple" when its epoch runs, displacing (and retracting
  /// downstream of) any different incumbent.  Same hook requirement as
  /// publish_retract(), plus a primary_key on the target table.
  void publish_upsert(const T& t) { queue_.publish(t, detail::kStreamUpsertSign); }

  /// Non-blocking: takes every output emitted so far.
  std::vector<Out> poll() {
    std::lock_guard<std::mutex> lk(out_mu_);
    std::vector<Out> got = std::move(outputs_);
    outputs_.clear();
    return got;
  }

  /// Blocks until every tuple published before the call has been folded
  /// into a completed epoch fixpoint, then returns poll().  After drain()
  /// (and with no concurrent producers) the wrapped engine is quiescent,
  /// so its tables may be queried directly.  Rethrows the failure if an
  /// epoch's rules threw (the stream is dead afterwards; see failed()).
  std::vector<Out> drain() {
    drain_barrier();
    rethrow_if_failed();
    return poll();
  }

  /// True when an epoch's rules threw and the stream halted.  stop() never
  /// throws (it must be destructor-safe); drain() and
  /// rethrow_if_failed() surface the stored exception.
  bool failed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return error_ != nullptr;
  }

  void rethrow_if_failed() {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk(mu_);
      err = error_;
    }
    if (err) std::rethrow_exception(err);
  }

  /// Graceful shutdown: a poison pill flows through the ring, so every
  /// tuple published before stop() is still processed.  Idempotent; the
  /// destructor of the derived class calls it.
  void stop() {
    std::lock_guard<std::mutex> lk(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    queue_.publish_poison();
    if (worker_.joinable()) worker_.join();
  }

  bool running() const {
    std::lock_guard<std::mutex> lk(mu_);
    return running_;
  }

  /// Cumulative stats snapshot.
  StreamReport report() const {
    std::lock_guard<std::mutex> lk(mu_);
    return report_;
  }

  /// Drains the completed-epoch log (per-epoch StreamReport stats).
  std::vector<EpochStats> poll_epochs() {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<EpochStats> got(epoch_log_.begin(), epoch_log_.end());
    epoch_log_.clear();
    return got;
  }

 protected:
  explicit StreamBase(const StreamOptions& sopts)
      : sopts_(sopts), queue_(sopts.ring_capacity, sopts.wait) {
    JSTAR_CHECK_MSG(sopts_.max_epoch_tuples >= 1,
                    "StreamOptions::max_epoch_tuples must be >= 1");
  }
  ~StreamBase() = default;

  /// Derived constructors call this after their engine is fully set up.
  void start() {
    worker_ = std::thread([this] { loop(); });
  }

  Emit make_emit() {
    return [this](const Out& out) {
      std::lock_guard<std::mutex> lk(out_mu_);
      outputs_.push_back(out);
    };
  }

  const StreamOptions sopts_;

 private:
  Derived& derived() { return static_cast<Derived&>(*this); }

  void loop() {
    try {
      run_epochs();
    } catch (...) {
      // A rule threw during an epoch's fixpoint.  The stream halts (the
      // engine state may be mid-derivation); drain() rethrows.
      {
        std::lock_guard<std::mutex> lk(mu_);
        error_ = std::current_exception();
        running_ = false;
      }
      cv_.notify_all();
      // Keep committing the ring so producers blocked on a full buffer
      // and stop()'s poison pill always make progress; the tuples are
      // discarded — this engine is dead.  If the failing slice already
      // held the poison (stop() raced the failure), there is no second
      // pill to wait for.
      if (!saw_poison_) discard_until_poison();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_ = false;
    }
    cv_.notify_all();
  }

  void run_epochs() {
    while (!saw_poison_ || queue_.ready()) {
      queue_.wait_ready();
      // Buffer the slice before opening an epoch: a slice holding only
      // the shutdown poison pill must not advance the retain(N) windows
      // (and idle streams never spin them forward at all).
      slice_.clear();
      bool poison = false;
      queue_.consume_slice(
          sopts_.max_epoch_tuples,
          [this](const T& t, std::int32_t sign) {
            slice_.emplace_back(t, sign);
          },
          &poison);
      if (poison) saw_poison_ = true;
      if (slice_.empty()) {
        std::lock_guard<std::mutex> lk(mu_);
        processed_ = queue_.consumed();
        cv_.notify_all();
        continue;
      }
      EpochStats es;
      es.epoch = derived().epoch_begin();
      WallTimer timer;
      es.ingested = static_cast<std::int64_t>(slice_.size());
      for (const auto& [t, sign] : slice_) derived().epoch_deliver(t, sign);
      const EpochStats run = derived().epoch_fixpoint();
      es.batches = run.batches;
      es.tuples = run.tuples;
      es.messages = run.messages;
      es.mail_epochs = run.mail_epochs;
      es.gamma_retired = run.gamma_retired;
      es.index_retired = run.index_retired;
      es.emit_buffered = run.emit_buffered;
      es.emit_flushes = run.emit_flushes;
      es.inline_batches = run.inline_batches;
      es.seconds = timer.seconds();
      {
        std::lock_guard<std::mutex> lk(mu_);
        report_.absorb(es);
        epoch_log_.push_back(es);
        while (epoch_log_.size() > sopts_.epoch_log_capacity) {
          epoch_log_.pop_front();
          ++report_.epoch_log_dropped;
        }
        processed_ = queue_.consumed();
      }
      cv_.notify_all();
    }
  }

  void discard_until_poison() {
    bool poison = false;
    while (!poison) {
      queue_.wait_ready();
      (void)queue_.consume_slice(sopts_.max_epoch_tuples,
                                 [](const T&, std::int32_t) {}, &poison);
      std::lock_guard<std::mutex> lk(mu_);
      processed_ = queue_.consumed();
    }
    cv_.notify_all();
  }

  void drain_barrier() {
    const std::int64_t target = queue_.claimed();
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return processed_ >= target || !running_; });
  }

  IngestQueue<T> queue_;
  std::thread worker_;
  // Consumer-thread scratch, reused across epochs: (tuple, sign) pairs.
  std::vector<std::pair<T, std::int32_t>> slice_;
  bool saw_poison_ = false;  // consumer-thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  StreamReport report_;
  std::deque<EpochStats> epoch_log_;
  std::int64_t processed_ = -1;
  bool running_ = true;
  std::exception_ptr error_ = nullptr;

  std::mutex out_mu_;
  std::vector<Out> outputs_;

  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace detail

/// A long-lived single-engine stream.  T is the ingested tuple type (must
/// be copyable and default-constructible — it lives in ring slots); Out is
/// what rules emit to consumers.
template <typename T, typename Out = T>
class StreamingEngine final
    : public detail::StreamBase<T, Out, StreamingEngine<T, Out>> {
  using Base = detail::StreamBase<T, Out, StreamingEngine<T, Out>>;
  friend Base;

 public:
  using Deliver = std::function<void(const T&)>;
  /// Signed delivery for counted tables: hands one ingested tuple plus its
  /// delta sign (-1 retraction, Table<X>::kUpsertSign upsert) to the
  /// engine — typically `table.seed_signed(t, sign)`.
  using DeliverSigned = std::function<void(const T&, std::int32_t)>;
  using Emit = typename Base::Emit;
  /// Declares tables and rules on the engine and returns the Deliver
  /// function that hands one ingested tuple to it (typically
  /// `eng.put(table, t)`).  `emit` is the thread-safe output channel for
  /// rules/effects.
  using Setup = std::function<Deliver(Engine&, const Emit&)>;
  /// Both delivery lanes; deliver_signed may be null when the stream never
  /// sees publish_retract()/publish_upsert().
  struct Hooks {
    Deliver deliver;
    DeliverSigned deliver_signed;
  };
  using SetupHooks = std::function<Hooks(Engine&, const Emit&)>;

  StreamingEngine(const StreamOptions& sopts, const EngineOptions& eopts,
                  const Setup& setup)
      : StreamingEngine(sopts, eopts,
                        SetupHooks([&setup](Engine& eng, const Emit& emit) {
                          return Hooks{setup(eng, emit), nullptr};
                        })) {}

  StreamingEngine(const StreamOptions& sopts, const EngineOptions& eopts,
                  const SetupHooks& setup)
      : Base(sopts), engine_(eopts) {
    Hooks hooks = setup(engine_, this->make_emit());
    deliver_ = std::move(hooks.deliver);
    deliver_signed_ = std::move(hooks.deliver_signed);
    engine_.prepare();
    this->start();
  }

  ~StreamingEngine() { this->stop(); }

  /// The wrapped engine.  Only query it while the stream is provably
  /// quiescent: after drain() with no concurrent producers, or after
  /// stop().
  Engine& engine() { return engine_; }

 private:
  std::int64_t epoch_begin() {
    const detail::RetiredTotals before = detail::retired_totals(engine_);
    const std::int64_t e = engine_.begin_epoch();
    const detail::RetiredTotals after = detail::retired_totals(engine_);
    epoch_gamma_retired_ = after.gamma - before.gamma;
    epoch_index_retired_ = after.index - before.index;
    return e;
  }
  void epoch_deliver(const T& t, std::int32_t sign) {
    if (sign == 1) {
      deliver_(t);
      return;
    }
    JSTAR_CHECK_MSG(deliver_signed_ != nullptr,
                    "publish_retract/publish_upsert require the SetupHooks "
                    "constructor with a deliver_signed hook");
    deliver_signed_(t, sign);
  }
  EpochStats epoch_fixpoint() {
    const RunReport r = engine_.run();
    EpochStats es;
    es.batches = r.batches;
    es.tuples = r.tuples;
    es.gamma_retired = epoch_gamma_retired_;
    es.index_retired = epoch_index_retired_;
    es.emit_buffered = r.emit_buffered;
    es.emit_flushes = r.emit_flushes;
    es.inline_batches = r.inline_batches;
    return es;
  }

  Engine engine_;
  Deliver deliver_;
  DeliverSigned deliver_signed_;
  // Consumer-thread scratch: GC volume of the epoch being processed.
  std::int64_t epoch_gamma_retired_ = 0;
  std::int64_t epoch_index_retired_ = 0;
};

/// A long-lived sharded stream: the cluster substrate (src/dist/sharded.h,
/// BSP or async schedule over one shared fork/join pool) run epoch by
/// epoch.  `route` assigns each ingested tuple to its owner shard
/// (typically dist::partition_of over the tuple's key).
///
/// Works unchanged with the async fabric's sender batching: cluster_.run()
/// flushes every send batch before returning its last credit
/// (flush-before-idle), so when run() returns the fabric is empty and the
/// epoch boundary this wrapper drives in lockstep stays clean — no mail
/// can leak from one streaming epoch into the next.
template <typename T, typename Out = T>
class ShardedStreamingEngine final
    : public detail::StreamBase<T, Out, ShardedStreamingEngine<T, Out>> {
  using Base = detail::StreamBase<T, Out, ShardedStreamingEngine<T, Out>>;
  friend Base;

 public:
  using Emit = typename Base::Emit;
  using Route = std::function<int(const T&)>;
  /// Per-shard setup, as in ShardedEngine, plus the shared output channel.
  using Setup = std::function<typename dist::ShardedEngine<T>::Deliver(
      int shard, Engine&, dist::Sender<T>&, const Emit&)>;
  /// Hooks form: per-shard setup returning both delivery lanes
  /// (ShardedEngine::ShardHooks), required when the stream carries
  /// publish_retract()/publish_upsert() traffic — signed tuples reach
  /// their owner shard through the mailbox signed lane and enter the
  /// engine via the deliver_signed hook.
  using SetupHooks =
      std::function<typename dist::ShardedEngine<T>::ShardHooks(
          int shard, Engine&, dist::Sender<T>&, const Emit&)>;

  ShardedStreamingEngine(const StreamOptions& sopts, int shards,
                         const EngineOptions& eopts,
                         const dist::ShardedOptions& dopts,
                         const Setup& setup, Route route)
      : Base(sopts),
        route_(std::move(route)),
        cluster_(shards, eopts, dopts,
                 typename dist::ShardedEngine<T>::Setup(
                     [this, &setup](int shard, Engine& eng,
                                    dist::Sender<T>& sender) {
                       return setup(shard, eng, sender, this->make_emit());
                     })) {
    this->start();
  }

  ShardedStreamingEngine(const StreamOptions& sopts, int shards,
                         const EngineOptions& eopts,
                         const dist::ShardedOptions& dopts,
                         const SetupHooks& setup, Route route)
      : Base(sopts),
        route_(std::move(route)),
        cluster_(shards, eopts, dopts,
                 typename dist::ShardedEngine<T>::SetupHooks(
                     [this, &setup](int shard, Engine& eng,
                                    dist::Sender<T>& sender) {
                       return setup(shard, eng, sender, this->make_emit());
                     })) {
    this->start();
  }

  ~ShardedStreamingEngine() { this->stop(); }

  int shards() const { return cluster_.shards(); }
  /// Quiescence caveats as in StreamingEngine::engine().
  Engine& engine(int shard) { return cluster_.engine(shard); }
  dist::ShardedEngine<T>& cluster() { return cluster_; }

 private:
  detail::RetiredTotals cluster_retired_totals() {
    detail::RetiredTotals r;
    for (int s = 0; s < cluster_.shards(); ++s) {
      const detail::RetiredTotals one = detail::retired_totals(
          cluster_.engine(s));
      r.gamma += one.gamma;
      r.index += one.index;
    }
    return r;
  }
  std::int64_t epoch_begin() {
    const detail::RetiredTotals before = cluster_retired_totals();
    const std::int64_t e = cluster_.begin_epoch();
    const detail::RetiredTotals after = cluster_retired_totals();
    epoch_gamma_retired_ = after.gamma - before.gamma;
    epoch_index_retired_ = after.index - before.index;
    return e;
  }
  void epoch_deliver(const T& t, std::int32_t sign) {
    if (sign == 1) {
      cluster_.seed(route_(t), t);
    } else {
      cluster_.seed_signed(route_(t), t, sign);
    }
  }
  EpochStats epoch_fixpoint() {
    const dist::ShardedRunReport r = cluster_.run();
    EpochStats es;
    es.batches = r.local_batches;
    es.tuples = r.local_tuples;
    es.messages = r.messages;
    es.mail_epochs = r.epochs;
    es.gamma_retired = epoch_gamma_retired_;
    es.index_retired = epoch_index_retired_;
    es.emit_buffered = r.emit_buffered;
    es.emit_flushes = r.emit_flushes;
    es.inline_batches = r.inline_batches;
    return es;
  }

  Route route_;
  dist::ShardedEngine<T> cluster_;
  std::int64_t epoch_gamma_retired_ = 0;
  std::int64_t epoch_index_retired_ = 0;
};

}  // namespace jstar::stream
