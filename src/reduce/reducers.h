// Reduce operators with user-defined combination — the JStar replacement
// for sequential accumulation loops (§1.3: "JStar supports reduce and scan
// operations with user-defined operators").
//
// A reducer is a commutative-monoid accumulator:
//   * a value type V and an identity (the default-constructed reducer),
//   * add(x)   — fold one element,
//   * merge(r) — combine another partial reduction (tree combine, §5.2).
//
// Because merge() is associative, any loop over a relation that feeds a
// reducer has independent iterations up to the final combine — which is
// exactly why JStar can parallelise reducer loops "with a tree-based pass
// to combine the final reducer results" (§5.2).  parallel.h implements
// that pass on the fork/join pool.
//
// The Reducible concept below is the compile-time contract; Statistics
// (util/statistics.h, the Fig 4 reducer) satisfies it, as do the reducers
// here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "util/check.h"

namespace jstar::reduce {

/// Compile-time contract for reducers: default-constructible identity,
/// element folding, and associative partial-result merging.
template <typename R, typename V>
concept Reducible = requires(R r, const R cr, V v) {
  R{};
  r.add(v);
  r.merge(cr);
};

// ---------------------------------------------------------------------------
// Arithmetic reducers
// ---------------------------------------------------------------------------

/// Sum of elements.  T must be an arithmetic-like type with += .
template <typename T>
class Sum {
 public:
  void add(T x) { value_ += x; }
  void merge(const Sum& o) { value_ += o.value_; }
  T value() const { return value_; }

 private:
  T value_{};
};

/// Element count (useful for aggregate `count` queries).
class Count {
 public:
  template <typename T>
  void add(const T&) {
    ++n_;
  }
  void merge(const Count& o) { n_ += o.n_; }
  std::int64_t value() const { return n_; }

 private:
  std::int64_t n_ = 0;
};

/// Minimum element; empty() when nothing was added (a `get min` aggregate
/// over an empty relation has no result).
template <typename T, typename Less = std::less<T>>
class Min {
 public:
  void add(const T& x) {
    if (!value_ || Less{}(x, *value_)) value_ = x;
  }
  void merge(const Min& o) {
    if (o.value_) add(*o.value_);
  }
  bool empty() const { return !value_.has_value(); }
  const T& value() const {
    JSTAR_CHECK_MSG(value_.has_value(), "Min reducer is empty");
    return *value_;
  }

 private:
  std::optional<T> value_;
};

/// Maximum element; empty() when nothing was added.
template <typename T, typename Less = std::less<T>>
class Max {
 public:
  void add(const T& x) {
    if (!value_ || Less{}(*value_, x)) value_ = x;
  }
  void merge(const Max& o) {
    if (o.value_) add(*o.value_);
  }
  bool empty() const { return !value_.has_value(); }
  const T& value() const {
    JSTAR_CHECK_MSG(value_.has_value(), "Max reducer is empty");
    return *value_;
  }

 private:
  std::optional<T> value_;
};

// ---------------------------------------------------------------------------
// Order-statistics reducers
// ---------------------------------------------------------------------------

/// The k smallest elements, ascending.  merge() keeps the combined top-k,
/// so the reducer is a monoid for any fixed k.
template <typename T, typename Less = std::less<T>>
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {
    JSTAR_CHECK_MSG(k >= 1, "TopK needs k >= 1");
  }

  void add(const T& x) {
    items_.push_back(x);
    shrink();
  }
  void merge(const TopK& o) {
    JSTAR_CHECK_MSG(k_ == o.k_, "merging TopK reducers with different k");
    items_.insert(items_.end(), o.items_.begin(), o.items_.end());
    shrink();
  }
  /// The k (or fewer) smallest elements seen, in ascending order.
  std::vector<T> values() const {
    std::vector<T> out = items_;
    std::sort(out.begin(), out.end(), Less{});
    if (out.size() > k_) out.resize(k_);
    return out;
  }
  std::size_t k() const { return k_; }

 private:
  void shrink() {
    if (items_.size() <= 2 * k_) return;
    std::nth_element(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(k_) - 1,
                     items_.end(), Less{});
    items_.resize(k_);
  }

  std::size_t k_;
  std::vector<T> items_;  // invariant: contains a superset of the true top-k
};

/// Fixed-bin histogram over [lo, hi); out-of-range values are clamped into
/// the first/last bin.  merge() adds bin counts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    JSTAR_CHECK_MSG(bins >= 1 && hi > lo, "invalid histogram shape");
  }

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    bin = std::clamp<std::int64_t>(bin, 0,
                                   static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
  }
  void merge(const Histogram& o) {
    JSTAR_CHECK_MSG(counts_.size() == o.counts_.size() && lo_ == o.lo_ &&
                        hi_ == o.hi_,
                    "merging incompatible histograms");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  }
  const std::vector<std::int64_t>& counts() const { return counts_; }
  std::int64_t total() const {
    std::int64_t n = 0;
    for (auto c : counts_) n += c;
    return n;
  }

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
};

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Wraps a plain binary operation `combine` with identity `id` into a
/// reducer — the "user-defined operators" form of §1.3.
template <typename T, typename Op>
class Fold {
 public:
  Fold(T id, Op op) : value_(std::move(id)), op_(std::move(op)) {}

  void add(const T& x) { value_ = op_(value_, x); }
  void merge(const Fold& o) { value_ = op_(value_, o.value_); }
  const T& value() const { return value_; }

 private:
  T value_;
  Op op_;
};

template <typename T, typename Op>
Fold(T, Op) -> Fold<T, Op>;

/// Runs two reducers over the same stream (e.g. Sum + Count in one pass).
template <typename A, typename B>
class Pair {
 public:
  Pair() = default;
  Pair(A a, B b) : a_(std::move(a)), b_(std::move(b)) {}

  template <typename V>
  void add(const V& v) {
    a_.add(v);
    b_.add(v);
  }
  void merge(const Pair& o) {
    a_.merge(o.a_);
    b_.merge(o.b_);
  }
  const A& first() const { return a_; }
  const B& second() const { return b_; }

 private:
  A a_;
  B b_;
};

}  // namespace jstar::reduce
