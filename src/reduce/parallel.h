// Parallel reduce and scan on the fork/join pool — the execution side of
// §1.3's "reduce and scan operations with user-defined operators" and the
// §5.2 observation that "loops that do involve a reducer object could also
// be executed in parallel, with a tree-based pass to combine the final
// reducer results".
//
//   * parallel_reduce  — splits [0, n) into per-worker chunks, folds each
//     chunk into a private reducer (no sharing, no locks), then merges the
//     partials left-to-right.  Deterministic for commutative monoids, and
//     also for merely-associative ones because the merge order is fixed.
//   * parallel_scan    — Blelloch two-pass prefix scan over a sequence
//     with a user-supplied associative operation (inclusive and exclusive
//     variants).
//
// Both degrade gracefully to sequential loops when the pool is null or the
// input is small, so they are safe to call from -sequential strategies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/fork_join_pool.h"
#include "util/check.h"

namespace jstar::reduce {

/// Chunk bounds for splitting [0, n) into `parts` nearly equal ranges.
struct Chunk {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

inline std::vector<Chunk> split_range(std::int64_t n, int parts) {
  JSTAR_CHECK_MSG(parts >= 1, "split_range needs parts >= 1");
  std::vector<Chunk> out;
  out.reserve(static_cast<std::size_t>(parts));
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  std::int64_t at = 0;
  for (int p = 0; p < parts; ++p) {
    const std::int64_t len = base + (p < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  return out;
}

/// Folds fn(i) for i in [0, n) into a reducer of type R, in parallel.
/// `fold` receives (reducer&, index); partial reducers merge in chunk
/// order, so the result is deterministic for associative merges.
///
/// `identity` must be a *neutral* element: it is copied as the prototype
/// of every per-chunk partial (carrying configuration such as Histogram
/// bin bounds or TopK's k), so any data it already holds would be counted
/// once per chunk.  Fold pre-accumulated state in with merge() afterwards.
template <typename R, typename FoldFn>
R parallel_reduce(sched::ForkJoinPool* pool, std::int64_t n, FoldFn&& fold,
                  R identity = R{}) {
  if (n <= 0) return identity;
  const int parts =
      (pool == nullptr || n < 2) ? 1 : std::max(1, pool->size());
  if (parts == 1) {
    R acc = std::move(identity);
    for (std::int64_t i = 0; i < n; ++i) fold(acc, i);
    return acc;
  }
  const std::vector<Chunk> chunks = split_range(n, parts);
  std::vector<R> partials(chunks.size(), identity);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks.size());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    tasks.push_back([c, &chunks, &partials, &fold] {
      R& acc = partials[c];
      for (std::int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
        fold(acc, i);
      }
    });
  }
  pool->invoke_all(std::move(tasks));
  // Tree-equivalent combine: partials merge left-to-right (the tree shape
  // only changes constant factors; order is what determinism needs).
  R result = std::move(identity);
  for (R& p : partials) result.merge(p);
  return result;
}

/// Convenience: reduce the elements of a vector-like container.
template <typename R, typename Container, typename AddFn>
R parallel_reduce_over(sched::ForkJoinPool* pool, const Container& xs,
                       AddFn&& add, R identity = R{}) {
  return parallel_reduce<R>(
      pool, static_cast<std::int64_t>(xs.size()),
      [&](R& acc, std::int64_t i) {
        add(acc, xs[static_cast<std::size_t>(i)]);
      },
      std::move(identity));
}

/// In-place inclusive prefix scan: out[i] = x0 op x1 op ... op xi.
/// `op` must be associative.  Blelloch two-pass: per-chunk scan, exclusive
/// scan of chunk totals, then a parallel fix-up pass.
template <typename T, typename Op>
void parallel_inclusive_scan(sched::ForkJoinPool* pool, std::vector<T>& xs,
                             Op op) {
  const auto n = static_cast<std::int64_t>(xs.size());
  if (n <= 1) return;
  const int parts =
      (pool == nullptr) ? 1 : std::min<std::int64_t>(pool->size(), n / 2);
  if (parts <= 1) {
    for (std::int64_t i = 1; i < n; ++i) {
      xs[static_cast<std::size_t>(i)] =
          op(xs[static_cast<std::size_t>(i - 1)],
             xs[static_cast<std::size_t>(i)]);
    }
    return;
  }
  const std::vector<Chunk> chunks = split_range(n, parts);
  std::vector<T> totals(chunks.size());
  // Pass 1 (parallel): scan each chunk locally, record its total.
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      tasks.push_back([c, &chunks, &xs, &totals, &op] {
        const Chunk ch = chunks[c];
        for (std::int64_t i = ch.begin + 1; i < ch.end; ++i) {
          xs[static_cast<std::size_t>(i)] =
              op(xs[static_cast<std::size_t>(i - 1)],
                 xs[static_cast<std::size_t>(i)]);
        }
        totals[c] = xs[static_cast<std::size_t>(ch.end - 1)];
      });
    }
    pool->invoke_all(std::move(tasks));
  }
  // Pass 2 (sequential, tiny): exclusive scan of the chunk totals.
  std::vector<T> offsets(chunks.size());
  for (std::size_t c = 1; c < chunks.size(); ++c) {
    offsets[c] = (c == 1) ? totals[0] : op(offsets[c - 1], totals[c - 1]);
  }
  // Pass 3 (parallel): add each chunk's offset to its elements.
  {
    std::vector<std::function<void()>> tasks;
    for (std::size_t c = 1; c < chunks.size(); ++c) {
      tasks.push_back([c, &chunks, &xs, &offsets, &op] {
        const Chunk ch = chunks[c];
        for (std::int64_t i = ch.begin; i < ch.end; ++i) {
          xs[static_cast<std::size_t>(i)] =
              op(offsets[c], xs[static_cast<std::size_t>(i)]);
        }
      });
    }
    pool->invoke_all(std::move(tasks));
  }
}

/// Exclusive prefix scan: out[i] = id op x0 op ... op x(i-1); out[0] = id.
template <typename T, typename Op>
void parallel_exclusive_scan(sched::ForkJoinPool* pool, std::vector<T>& xs,
                             T identity, Op op) {
  const auto n = static_cast<std::int64_t>(xs.size());
  if (n == 0) return;
  // Inclusive scan then shift right by one.  The shift is cheap relative
  // to the scan and keeps one code path for the two-pass algorithm.
  parallel_inclusive_scan(pool, xs, op);
  for (std::int64_t i = n - 1; i >= 1; --i) {
    xs[static_cast<std::size_t>(i)] = xs[static_cast<std::size_t>(i - 1)];
  }
  xs[0] = std::move(identity);
}

}  // namespace jstar::reduce
