// A concurrent ordered map: the C++ stand-in for Java's
// ConcurrentSkipListMap, which the JStar runtime uses for the parallel
// Delta tree and as the default parallel Gamma table structure (§5).
//
// The algorithm is the lazy lock-based skip list of Herlihy & Shavit
// ("The Art of Multiprocessor Programming", ch. 14):
//   * wait-free contains / ordered traversal,
//   * fine-grained (per-predecessor) locking on insert and erase,
//   * logical deletion via a `marked` flag, then physical unlinking.
//
// Memory reclamation: Java relies on GC; here erased nodes are *retired* to
// a list and physically freed only by collect_garbage() / the destructor.
// The JStar engine calls collect_garbage() only between Delta batches, when
// it has exclusive access, so readers never touch freed memory.  pop_min()
// is likewise documented exclusive-phase-only (the engine's coordinator is
// the single caller, between parallel batches).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace jstar::concurrent {

template <typename K, typename V, typename Compare = std::less<K>>
class SkipListMap {
 public:
  static constexpr int kMaxLevel = 24;

  SkipListMap() : head_(new Node(K{}, kMaxLevel - 1)) {
    head_->fully_linked.store(true, std::memory_order_release);
  }

  ~SkipListMap() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    for (Node* r : retired_) delete r;
  }

  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  /// Finds the value for `key`, inserting `make()` if absent.  Returns a
  /// reference valid until the node is erased *and* garbage-collected.
  /// Thread-safe against concurrent get_or_insert/contains/traversal.
  template <typename Factory>
  V& get_or_insert(const K& key, Factory&& make) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int top = random_level();
    for (;;) {
      const int found_level = find(key, preds, succs);
      if (found_level != -1) {
        Node* found = succs[found_level];
        if (!found->marked.load(std::memory_order_acquire)) {
          while (!found->fully_linked.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          return found->value;
        }
        // Node logically deleted; retry until physically gone.
        std::this_thread::yield();
        continue;
      }
      // Lock the predecessors bottom-up and validate.
      std::unique_lock<std::mutex> locks[kMaxLevel];
      Node* last_locked = nullptr;
      bool valid = true;
      for (int level = 0; valid && level <= top; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          locks[level] = std::unique_lock<std::mutex>(pred->lock);
          last_locked = pred;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) ==
                    succs[level];
      }
      if (!valid) continue;
      Node* node = new Node(key, top);
      node->value = make();
      for (int level = 0; level <= top; ++level) {
        node->next[level].store(succs[level], std::memory_order_relaxed);
      }
      for (int level = 0; level <= top; ++level) {
        preds[level]->next[level].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      size_.fetch_add(1, std::memory_order_relaxed);
      return node->value;
    }
  }

  /// Inserts (key, value) if absent.  Returns true if inserted.
  bool insert(const K& key, V value) {
    bool inserted = false;
    get_or_insert(key, [&] {
      inserted = true;
      return std::move(value);
    });
    return inserted;
  }

  /// Wait-free membership test.
  bool contains(const K& key) const {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int found = find(key, preds, succs);
    return found != -1 &&
           succs[found]->fully_linked.load(std::memory_order_acquire) &&
           !succs[found]->marked.load(std::memory_order_acquire);
  }

  /// Returns a pointer to the value for `key`, or nullptr.  The pointer is
  /// stable until the node is erased and garbage-collected.
  V* find_value(const K& key) const {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int found = find(key, preds, succs);
    if (found == -1) return nullptr;
    Node* n = succs[found];
    if (!n->fully_linked.load(std::memory_order_acquire) ||
        n->marked.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return &n->value;
  }

  /// Erases `key` (lazy: mark then unlink).  Returns true if erased.
  bool erase(const K& key) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    Node* victim = nullptr;
    bool is_marked = false;
    int top = -1;
    for (;;) {
      const int found_level = find(key, preds, succs);
      if (found_level != -1) victim = succs[found_level];
      if (is_marked ||
          (found_level != -1 &&
           victim->fully_linked.load(std::memory_order_acquire) &&
           victim->top_level == found_level &&
           !victim->marked.load(std::memory_order_acquire))) {
        if (!is_marked) {
          top = victim->top_level;
          victim->lock.lock();
          if (victim->marked.load(std::memory_order_acquire)) {
            victim->lock.unlock();
            return false;
          }
          victim->marked.store(true, std::memory_order_release);
          is_marked = true;
        }
        std::unique_lock<std::mutex> locks[kMaxLevel];
        Node* last_locked = nullptr;
        bool valid = true;
        for (int level = 0; valid && level <= top; ++level) {
          Node* pred = preds[level];
          if (pred != last_locked) {
            locks[level] = std::unique_lock<std::mutex>(pred->lock);
            last_locked = pred;
          }
          valid = !pred->marked.load(std::memory_order_acquire) &&
                  pred->next[level].load(std::memory_order_acquire) == victim;
        }
        if (!valid) continue;
        for (int level = top; level >= 0; --level) {
          preds[level]->next[level].store(
              victim->next[level].load(std::memory_order_acquire),
              std::memory_order_release);
        }
        victim->lock.unlock();
        retire(victim);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      return false;
    }
  }

  /// EXCLUSIVE-PHASE ONLY.  Removes and returns the minimum entry.
  /// The caller must guarantee no concurrent operations (the engine calls
  /// this from the single coordinator between parallel batches).
  bool pop_min(K& key_out, V& value_out) {
    Node* first = head_->next[0].load(std::memory_order_acquire);
    if (first == nullptr) return false;
    for (int level = 0; level <= first->top_level; ++level) {
      head_->next[level].store(first->next[level].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    key_out = first->key;
    value_out = std::move(first->value);
    delete first;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// EXCLUSIVE-PHASE ONLY.  Peek at the minimum key.
  const K* peek_min() const {
    Node* first = head_->next[0].load(std::memory_order_acquire);
    return first == nullptr ? nullptr : &first->key;
  }

  /// Ordered traversal of all live entries.  Safe concurrently with
  /// inserts; entries inserted during traversal may or may not be seen.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Node* n = head_->next[0].load(std::memory_order_acquire); n != nullptr;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->fully_linked.load(std::memory_order_acquire) &&
          !n->marked.load(std::memory_order_acquire)) {
        fn(n->key, n->value);
      }
    }
  }

  /// Ordered traversal of entries with lo <= key < hi.
  template <typename Fn>
  void for_range(const K& lo, const K& hi, Fn&& fn) const {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(lo, preds, succs);
    for (Node* n = succs[0]; n != nullptr && less_(n->key, hi);
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->fully_linked.load(std::memory_order_acquire) &&
          !n->marked.load(std::memory_order_acquire)) {
        fn(n->key, n->value);
      }
    }
  }

  /// Ordered traversal of entries with lo <= key, to the end (the
  /// open-above form of for_range, used by unbounded range plans).
  template <typename Fn>
  void for_each_from(const K& lo, Fn&& fn) const {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find(lo, preds, succs);
    for (Node* n = succs[0]; n != nullptr;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->fully_linked.load(std::memory_order_acquire) &&
          !n->marked.load(std::memory_order_acquire)) {
        fn(n->key, n->value);
      }
    }
  }

  std::size_t size() const {
    const auto s = size_.load(std::memory_order_relaxed);
    return s > 0 ? static_cast<std::size_t>(s) : 0;
  }

  bool empty() const {
    return head_->next[0].load(std::memory_order_acquire) == nullptr;
  }

  /// EXCLUSIVE-PHASE ONLY.  Frees retired (erased) nodes.
  void collect_garbage() {
    std::lock_guard<std::mutex> lk(retired_mu_);
    for (Node* r : retired_) delete r;
    retired_.clear();
  }

 private:
  struct Node {
    Node(const K& k, int top)
        : key(k), top_level(top), next(static_cast<std::size_t>(top + 1)) {}
    K key;
    V value{};
    const int top_level;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::mutex lock;
    std::vector<std::atomic<Node*>> next;
  };

  bool equal(const K& a, const K& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  /// Fills preds/succs for every level; returns the highest level at which
  /// `key` was found, or -1.
  int find(const K& key, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != nullptr && less_(curr->key, key)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (found == -1 && curr != nullptr && equal(curr->key, key)) {
        found = level;
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return found;
  }

  static int random_level() {
    thread_local SplitMix64 rng(
        0x5eed ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
    int level = 0;
    // Geometric distribution with p = 1/2, capped below kMaxLevel.
    std::uint64_t bits = rng.next();
    while ((bits & 1) != 0 && level < kMaxLevel - 1) {
      ++level;
      bits >>= 1;
    }
    return level;
  }

  void retire(Node* n) {
    std::lock_guard<std::mutex> lk(retired_mu_);
    retired_.push_back(n);
  }

  Node* head_;
  Compare less_{};
  std::atomic<std::int64_t> size_{0};
  mutable std::mutex retired_mu_;
  std::vector<Node*> retired_;
};

}  // namespace jstar::concurrent
