// Striped (lock-sharded) hash map and set — the ConcurrentHashMap /
// concurrent HashSet stand-ins.  §6.2 uses these for the optimised PvWatts
// Gamma table ("we can use a HashSet or ConcurrentHashMap, which are
// considerably more efficient" than ordered structures when the query key
// is fully known).
#pragma once

#include <bit>
#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jstar::concurrent {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t stripes = 16)
      : shards_(std::bit_ceil(stripes)) {}

  /// Inserts (key, value) if absent; returns true if inserted.
  bool insert(const K& key, V value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.emplace(key, std::move(value)).second;
  }

  /// Finds the value for key, inserting make() if absent.  The returned
  /// reference stays valid until erase/clear (unordered_map node stability).
  template <typename Factory>
  V& get_or_insert(const K& key, Factory&& make) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) it = s.map.emplace(key, make()).first;
    return it->second;
  }

  /// Applies fn under the shard lock to the value for key, default-creating
  /// it if absent.  This is the safe way to mutate values concurrently.
  template <typename Fn>
  void update(const K& key, Fn&& fn) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    fn(s.map[key]);
  }

  /// Copies out the value for key if present.
  bool lookup(const K& key, V& out) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    out = it->second;
    return true;
  }

  bool contains(const K& key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.count(key) != 0;
  }

  bool erase(const K& key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.erase(key) != 0;
  }

  /// Visits every entry, one shard at a time (each shard under its lock).
  /// Unordered; do not call map operations from fn (would self-deadlock).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [k, v] : s.map) fn(k, v);
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  /// The stripe count actually in use (after power-of-two rounding).
  std::size_t stripes() const { return shards_.size(); }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      s.map.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hash> map;
  };

  Shard& shard(const K& key) {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }
  const Shard& shard(const K& key) const {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }

  mutable std::vector<Shard> shards_;
};

template <typename T, typename Hash = std::hash<T>>
class StripedHashSet {
 public:
  explicit StripedHashSet(std::size_t stripes = 16)
      : shards_(std::bit_ceil(stripes)) {}

  /// Inserts v if absent; returns true if inserted.
  bool insert(const T& v) {
    Shard& s = shard(v);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.insert(v).second;
  }

  bool contains(const T& v) const {
    const Shard& s = shard(v);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.count(v) != 0;
  }

  bool erase(const T& v) {
    Shard& s = shard(v);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.erase(v) != 0;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& v : s.set) fn(v);
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.set.size();
    }
    return n;
  }

  /// The stripe count actually in use (after power-of-two rounding).
  std::size_t stripes() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<T, Hash> set;
  };

  Shard& shard(const T& v) { return shards_[Hash{}(v) & (shards_.size() - 1)]; }
  const Shard& shard(const T& v) const {
    return shards_[Hash{}(v) & (shards_.size() - 1)];
  }

  mutable std::vector<Shard> shards_;
};

}  // namespace jstar::concurrent
