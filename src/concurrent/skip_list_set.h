// Concurrent ordered set — the ConcurrentSkipListSet stand-in used as the
// default parallel Gamma table structure (§5: "queries of any ordered
// subset of the tuples can be performed reasonably efficiently").
#pragma once

#include <cstddef>

#include "concurrent/skip_list_map.h"

namespace jstar::concurrent {

template <typename T, typename Compare = std::less<T>>
class SkipListSet {
 public:
  /// Inserts `v` if absent; returns true if inserted (set semantics — the
  /// Delta tree relies on this to discard duplicate tuples, footnote 5).
  bool insert(const T& v) { return map_.insert(v, Unit{}); }

  bool contains(const T& v) const { return map_.contains(v); }

  bool erase(const T& v) { return map_.erase(v); }

  /// EXCLUSIVE-PHASE ONLY (see SkipListMap::pop_min).
  bool pop_min(T& out) {
    Unit u;
    return map_.pop_min(out, u);
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](const T& k, const Unit&) { fn(k); });
  }

  template <typename Fn>
  void for_range(const T& lo, const T& hi, Fn&& fn) const {
    map_.for_range(lo, hi, [&](const T& k, const Unit&) { fn(k); });
  }

  template <typename Fn>
  void for_each_from(const T& lo, Fn&& fn) const {
    map_.for_each_from(lo, [&](const T& k, const Unit&) { fn(k); });
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void collect_garbage() { map_.collect_garbage(); }

 private:
  struct Unit {};
  SkipListMap<T, Unit, Compare> map_;
};

}  // namespace jstar::concurrent
