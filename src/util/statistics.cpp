#include "util/statistics.h"

#include <cmath>
#include <cstdio>

namespace jstar {

double Statistics::stddev() const { return std::sqrt(variance()); }

std::string Statistics::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6g min=%.6g max=%.6g sd=%.6g",
                static_cast<unsigned long long>(count_), mean(), min_, max_,
                stddev());
  return buf;
}

}  // namespace jstar
