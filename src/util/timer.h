// Wall-clock timing used by the benchmark harnesses (bench/) and by the
// per-phase instrumentation of §6.3.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace jstar {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across several start/stop intervals.  Used by
/// the phase-breakdown instrumentation (bench_phase_breakdown reproduces the
/// §6.3 percentages: read / Gamma insert / Delta insert / reduce).
class PhaseTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  void add_seconds(double s) { total_ += s; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// Format seconds as a human-readable string ("12.34 ms", "1.23 s").
std::string format_duration(double seconds);

}  // namespace jstar
