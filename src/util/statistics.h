// The `Statistics` reducer — the "standard JStar reduce operator" used by
// the PvWatts program (Fig 4) to compute per-month mean power.
//
// It is an associative, commutative monoid (merge) so reducer loops can be
// parallelised with a tree-combine pass (§5.2).  Variance uses the parallel
// Chan/Golub/LeVeque update so merge() is numerically stable.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace jstar {

class Statistics {
 public:
  Statistics() = default;

  /// Fold one observation into the running statistics.
  void add(double x) {
    ++count_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  Statistics& operator+=(double x) {
    add(x);
    return *this;
  }

  /// Merge another partial reduction into this one (tree combine).
  void merge(const Statistics& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    sum_ += o.sum_;
    count_ += o.count_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Population variance.
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const;

  std::string to_string() const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace jstar
