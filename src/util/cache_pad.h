// Cache-line padding helpers, used by the scheduler, the concurrent
// containers and the Disruptor to avoid false sharing between hot
// per-thread / per-consumer counters (the paper's §6.3 Disruptor design
// relies on exactly this property of the LMAX ring buffer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace jstar {

// std::hardware_destructive_interference_size is not always available or
// accurate; 64 bytes is correct for every x86-64 part we target and a safe
// overestimate elsewhere.
inline constexpr std::size_t kCacheLine = 64;

/// A value of type T padded out to occupy whole cache lines.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};
  char pad[kCacheLine - (sizeof(T) % kCacheLine == 0 ? kCacheLine
                                                     : sizeof(T) % kCacheLine)];

  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}
};

/// A monotonically increasing sequence counter on its own cache line.
/// This is the `Sequence` concept from the Disruptor paper.
class alignas(kCacheLine) PaddedAtomicI64 {
 public:
  PaddedAtomicI64() : v_(0) {}
  explicit PaddedAtomicI64(std::int64_t init) : v_(init) {}

  std::int64_t load(std::memory_order mo = std::memory_order_acquire) const {
    return v_.load(mo);
  }
  void store(std::int64_t x, std::memory_order mo = std::memory_order_release) {
    v_.store(x, mo);
  }
  std::int64_t fetch_add(std::int64_t d,
                         std::memory_order mo = std::memory_order_acq_rel) {
    return v_.fetch_add(d, mo);
  }
  bool compare_exchange_weak(std::int64_t& expected, std::int64_t desired) {
    return v_.compare_exchange_weak(expected, desired,
                                    std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::int64_t> v_;
  char pad_[kCacheLine - sizeof(std::atomic<std::int64_t>)];
};

}  // namespace jstar
