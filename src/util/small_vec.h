// A small fixed-capacity-inline vector used for Delta-tree keys.
//
// Orderby lists in real JStar programs are short (the paper's examples use
// 1–4 levels), so keys almost never need heap storage; this keeps the
// millions-of-puts hot path (PvWatts §6.2 pushes 8.76M tuples) allocation
// free.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "util/check.h"

namespace jstar {

template <typename T, std::size_t InlineCap>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable payloads");

 public:
  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& o) { copy_from(o); }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      release();
      copy_from(o);
    }
    return *this;
  }

  SmallVec(SmallVec&& o) noexcept { move_from(std::move(o)); }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      move_from(std::move(o));
    }
    return *this;
  }

  ~SmallVec() { release(); }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data()[size_++] = v;
  }

  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* data() const { return heap_ ? heap_ : inline_; }
  T* data() { return heap_ ? heap_ : inline_; }

  const T& operator[](std::size_t i) const {
    JSTAR_DCHECK(i < size_);
    return data()[i];
  }
  T& operator[](std::size_t i) {
    JSTAR_DCHECK(i < size_);
    return data()[i];
  }

  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    return std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic comparison; a strict prefix compares less.
  friend std::strong_ordering operator<=>(const SmallVec& a,
                                          const SmallVec& b) {
    const std::size_t n = std::min(a.size_, b.size_);
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return std::strong_ordering::less;
      if (b[i] < a[i]) return std::strong_ordering::greater;
    }
    return a.size_ <=> b.size_;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* nh = new T[new_cap];
    std::memcpy(nh, data(), size_ * sizeof(T));
    if (heap_) delete[] heap_;
    heap_ = nh;
    cap_ = new_cap;
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = InlineCap;
    size_ = 0;
  }

  void copy_from(const SmallVec& o) {
    if (o.heap_) {
      heap_ = new T[o.cap_];
      cap_ = o.cap_;
      std::memcpy(heap_, o.heap_, o.size_ * sizeof(T));
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
    }
    size_ = o.size_;
  }

  void move_from(SmallVec&& o) {
    if (o.heap_) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.cap_ = InlineCap;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  T inline_[InlineCap];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = InlineCap;
};

/// FNV-1a style hash combiner for tuple field hashing (TableDecl::hash).
inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename... Args>
std::size_t hash_fields(const Args&... args) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  ((seed = hash_combine(seed, std::hash<std::decay_t<Args>>{}(args))), ...);
  return seed;
}

}  // namespace jstar
