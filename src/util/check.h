// Lightweight invariant checking for the jstar runtime.
//
// JSTAR_CHECK is always on (these guard user-visible API contracts and cheap
// runtime invariants); JSTAR_DCHECK compiles out in NDEBUG builds and guards
// hot-path internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace jstar {

/// Thrown when a runtime invariant or API precondition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "JSTAR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace jstar

#define JSTAR_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::jstar::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define JSTAR_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr))                                                       \
      ::jstar::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define JSTAR_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define JSTAR_DCHECK(expr) JSTAR_CHECK(expr)
#endif
