// Deterministic, splittable pseudo-random number generation.
//
// The paper's shortest-path case study (§6.5) notes that parallelising the
// random-graph creation rule "requires support for parallel random number
// generators".  SplitMix64 gives us exactly that: a tiny, high-quality
// generator whose streams can be split deterministically, so every JStar
// program in this repo is reproducible regardless of the parallelism
// strategy — which is what makes the determinism property tests possible.
#pragma once

#include <cstdint>

namespace jstar {

/// SplitMix64 (Steele, Lea, Flood 2014).  Passes BigCrush; 64-bit state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Unbiased enough for workload generation
  /// (bound << 2^64); uses the multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform int in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Deterministically derive an independent stream (for task i of a
  /// parallel loop).  Mixing the index through the output function keeps
  /// streams statistically independent.
  SplitMix64 split(std::uint64_t stream_index) const {
    SplitMix64 mixer(state_ ^ (0x5851f42d4c957f2dULL * (stream_index + 1)));
    return SplitMix64(mixer.next());
  }

 private:
  std::uint64_t state_;
};

}  // namespace jstar
