// A minimal JSON value type, writer and recursive-descent parser — just
// enough for the run-log subsystem (§1.5: "a logging system for recording
// usage statistics about each table during a program run, and tools to
// visualise those logs").  Self-contained: no external dependencies are
// available offline.
//
// Supported: null, booleans, integers (int64), doubles, strings with the
// standard escapes, arrays, objects.  Object member order is preserved so
// serialisation round-trips byte-identically for logs we wrote ourselves.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace jstar::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t at)
      : std::runtime_error(what + " at offset " + std::to_string(at)),
        offset(at) {}
  std::size_t offset;
};

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;  // order-preserving

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}            // NOLINT implicit
  Value(bool b) : v_(b) {}                          // NOLINT implicit
  Value(std::int64_t i) : v_(i) {}                  // NOLINT implicit
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT implicit
  Value(double d) : v_(d) {}                        // NOLINT implicit
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT implicit
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT implicit
  Value(Array a) : v_(std::move(a)) {}              // NOLINT implicit
  Value(Object o) : v_(std::move(o)) {}             // NOLINT implicit

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  /// Numeric accessor: accepts both int and double storage.
  double as_number() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }

  /// Object member lookup; throws std::out_of_range when missing.
  const Value& at(const std::string& key) const {
    for (const auto& [k, v] : as_object()) {
      if (k == key) return v;
    }
    throw std::out_of_range("no JSON member '" + key + "'");
  }
  bool has(const std::string& key) const {
    if (!is_object()) return false;
    for (const auto& [k, v] : as_object()) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

// --- writing ----------------------------------------------------------------

inline void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void write_to(const Value& v, std::string& out, int indent,
                     int depth) {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v.as_number());
    out += buf;
  } else if (v.is_string()) {
    escape_to(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += "[";
    out += nl;
    for (std::size_t i = 0; i < a.size(); ++i) {
      out += pad;
      write_to(a[i], out, indent, depth + 1);
      if (i + 1 < a.size()) out += ",";
      out += nl;
    }
    out += close_pad + "]";
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += "{";
    out += nl;
    for (std::size_t i = 0; i < o.size(); ++i) {
      out += pad;
      escape_to(o[i].first, out);
      out += indent > 0 ? ": " : ":";
      write_to(o[i].second, out, indent, depth + 1);
      if (i + 1 < o.size()) out += ",";
      out += nl;
    }
    out += close_pad + "}";
  }
}

/// Serialises; indent = 0 gives compact one-line output.
inline std::string write(const Value& v, int indent = 2) {
  std::string out;
  write_to(v, out, indent, 0);
  return out;
}

// --- parsing ----------------------------------------------------------------

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (at_ != text_.size()) throw ParseError("trailing content", at_);
    return v;
  }

 private:
  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\n' || text_[at_] == '\t' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek() {
    if (at_ >= text_.size()) throw ParseError("unexpected end", at_);
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "'", at_);
    }
    ++at_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(at_, w.size()) == w) {
      at_ += w.size();
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (consume_word("true")) return Value(true);
        throw ParseError("bad literal", at_);
      case 'f':
        if (consume_word("false")) return Value(false);
        throw ParseError("bad literal", at_);
      case 'n':
        if (consume_word("null")) return Value(nullptr);
        throw ParseError("bad literal", at_);
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return Value(std::move(o));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return Value(std::move(a));
    }
    for (;;) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_ >= text_.size()) throw ParseError("unterminated string", at_);
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) throw ParseError("bad escape", at_);
      const char e = text_[at_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) throw ParseError("bad \\u escape", at_);
          const std::string hex(text_.substr(at_, 4));
          at_ += 4;
          const auto code = static_cast<unsigned>(
              std::stoul(hex, nullptr, 16));
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: throw ParseError("bad escape", at_);
      }
    }
  }

  Value number() {
    const std::size_t start = at_;
    bool is_double = false;
    if (peek() == '-') ++at_;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c >= '0' && c <= '9') {
        ++at_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++at_;
      } else {
        break;
      }
    }
    if (at_ == start) throw ParseError("expected value", at_);
    const std::string token(text_.substr(start, at_ - start));
    try {
      if (is_double) return Value(std::stod(token));
      return Value(static_cast<std::int64_t>(std::stoll(token)));
    } catch (const std::exception&) {
      throw ParseError("bad number '" + token + "'", start);
    }
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

}  // namespace detail

inline Value parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace jstar::json
