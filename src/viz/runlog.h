// The run-log subsystem (§1.5): "a logging system for recording usage
// statistics about each table during a program run, and tools to
// visualise those logs as annotated dependency graphs of the program
// execution.  This is a useful basis for choosing parallelisation
// strategies."
//
// capture() snapshots an engine after (or during) a run into a RunLog:
// per-table usage counters, the observed table→table dataflow edges and
// the run report.  Logs serialise to JSON (save/load) so that separate
// tooling — or a later tuning session — can reload them and render
// annotated DOT dependency graphs without re-running the program, which
// is exactly the workflow split of §2 (application programmer produces
// logs; parallelisation engineer studies them).
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"

namespace jstar::viz {

/// One table's usage statistics snapshot.
struct TableLog {
  std::string name;
  std::string orderby;
  /// Which Gamma substrate the engine installed (GammaStore::describe():
  /// "tree-set", "skip-list", "flat-ordered", "striped-hash(64)", ...).
  std::string store;
  bool no_delta = false;
  bool no_gamma = false;
  std::int64_t puts = 0;
  std::int64_t delta_inserts = 0;
  std::int64_t delta_dups = 0;
  std::int64_t gamma_inserts = 0;
  std::int64_t gamma_dups = 0;
  std::int64_t gamma_retired = 0;
  /// -noGamma throughput: tuples that passed through a NullStore, so such
  /// tables report traffic instead of a silent size() == 0.
  std::int64_t gamma_passed_through = 0;
  std::int64_t fires = 0;
  std::int64_t queries = 0;
  std::int64_t index_lookups = 0;
  std::int64_t full_scans = 0;
  // Query-planner access paths (core/query_plan.h).
  std::int64_t pk_probes = 0;
  std::int64_t range_scans = 0;
  std::int64_t empty_plans = 0;
  std::int64_t index_retired = 0;
  std::int64_t residual_rows = 0;
  std::int64_t residual_hits = 0;
  // Columnar kernel pushdown (core/column_store.h).
  std::int64_t columnar_kernels = 0;
  std::int64_t columnar_rows = 0;
  std::int64_t columnar_selected = 0;
  // Morsel-parallel execution (core/simd.h + ForkJoinPool): how many
  // scans/kernels split, and into how many morsels in total.  The SIMD
  // dispatch level itself rides in `store` (GammaStore::describe()).
  std::int64_t morsel_runs = 0;
  std::int64_t morsel_splits = 0;
  // Retractions & upserts (TableDecl::counted(), core/table.h).
  std::int64_t retracts = 0;
  std::int64_t gamma_erased = 0;
  std::int64_t retract_debts = 0;
  std::int64_t annihilated = 0;
  std::int64_t upserts = 0;
  std::int64_t upsert_replaced = 0;
  // Batch-at-a-time rule firing (emit buffers + adaptive fire phase).
  std::int64_t emit_flushes = 0;
  std::int64_t emit_buffered = 0;
  std::int64_t inline_batches = 0;
  std::vector<std::string> rules;

  /// Fraction of tuples a routed plan examined that survived the residual
  /// filter (1.0 = every examined tuple matched, i.e. perfectly selective
  /// routing; 0 when no routed query ran).
  double residual_rate() const {
    return residual_rows > 0
               ? static_cast<double>(residual_hits) /
                     static_cast<double>(residual_rows)
               : 0.0;
  }

  /// Fraction of kernel-swept rows the selection bitmaps kept (how
  /// selective the pushed-down predicates were; 0 when no kernel ran).
  double kernel_selectivity() const {
    return columnar_rows > 0
               ? static_cast<double>(columnar_selected) /
                     static_cast<double>(columnar_rows)
               : 0.0;
  }

  friend bool operator==(const TableLog&, const TableLog&) = default;
};

/// One observed dataflow edge: rules triggered by `from` put into `to`.
struct EdgeLog {
  std::string from;
  std::string to;
  std::int64_t count = 0;

  friend bool operator==(const EdgeLog&, const EdgeLog&) = default;
};

struct RunLog {
  std::string program;
  std::vector<TableLog> tables;
  std::vector<EdgeLog> edges;
  std::int64_t batches = 0;
  std::int64_t tuples = 0;
  double seconds = 0.0;

  friend bool operator==(const RunLog&, const RunLog&) = default;
};

/// Snapshots the engine's statistics into a log.
RunLog capture(const Engine& engine, const std::string& program,
               const RunReport& report);

/// JSON round-trip.
std::string to_json(const RunLog& log);
RunLog from_json(const std::string& text);

/// File round-trip (throws std::runtime_error on IO failure).
void save(const RunLog& log, const std::string& path);
RunLog load(const std::string& path);

/// Renders a loaded log as an annotated DOT dependency graph (the same
/// shape as viz::dot_graph but driven entirely by the log, no engine
/// needed).  Hot tables — the top decile by rule fires — are highlighted,
/// which is the "basis for choosing parallelisation strategies".
std::string dot_graph(const RunLog& log);

}  // namespace jstar::viz
