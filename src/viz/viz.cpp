#include "viz/viz.h"

#include <cstdio>
#include <sstream>

namespace jstar::viz {

namespace {
std::string orderby_string(const TableBase& t) {
  std::string s = "(";
  bool first = true;
  for (const auto& level : t.orderby_spec()) {
    if (!first) s += ", ";
    first = false;
    switch (level.kind) {
      case OrderByLevel::Kind::Lit: s += level.name; break;
      case OrderByLevel::Kind::Seq: s += "seq " + level.name; break;
      case OrderByLevel::Kind::Par: s += "par " + level.name; break;
    }
  }
  return s + ")";
}
}  // namespace

std::string dot_graph(const Engine& engine, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=record, fontsize=10];\n";
  const auto tables = engine.all_tables();
  for (const TableBase* t : tables) {
    const auto& s = t->stats();
    os << "  t" << t->id() << " [label=\"{" << t->name() << " "
       << orderby_string(*t) << "|puts=" << s.puts.load()
       << "\\l\\u0394=" << s.delta_inserts.load()
       << " dup=" << s.delta_dups.load()
       << "\\l\\u0393=" << s.gamma_inserts.load()
       << " dup=" << s.gamma_dups.load()
       << "\\lfires=" << s.fires.load() << " queries=" << s.queries.load()
       << "\\l}\"";
    if (t->no_delta() || t->no_gamma()) {
      os << ", style=dashed";
    }
    os << "];\n";
  }
  const EdgeMatrix& edges = engine.edges();
  for (const TableBase* from : tables) {
    for (const TableBase* to : tables) {
      const std::int64_t n = edges.count(from->id(), to->id());
      if (n > 0) {
        os << "  t" << from->id() << " -> t" << to->id() << " [label=\"" << n
           << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string stats_report(const Engine& engine) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-16s %10s %10s %10s %10s %10s %10s %10s\n",
                "table", "puts", "delta", "delta-dup", "gamma", "gamma-dup",
                "fires", "queries");
  os << buf;
  for (const TableBase* t : engine.all_tables()) {
    const auto& s = t->stats();
    std::snprintf(buf, sizeof(buf),
                  "%-16s %10lld %10lld %10lld %10lld %10lld %10lld %10lld\n",
                  t->name().c_str(),
                  static_cast<long long>(s.puts.load()),
                  static_cast<long long>(s.delta_inserts.load()),
                  static_cast<long long>(s.delta_dups.load()),
                  static_cast<long long>(s.gamma_inserts.load()),
                  static_cast<long long>(s.gamma_dups.load()),
                  static_cast<long long>(s.fires.load()),
                  static_cast<long long>(s.queries.load()));
    os << buf;
  }
  return os.str();
}

}  // namespace jstar::viz
