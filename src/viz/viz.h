// Visualisation of program structure and execution statistics (§1.5's
// "simple graph visualizer" and "tools to visualise those logs as
// annotated dependency graphs of the program execution").
//
// The engine records a dynamic table→table dataflow matrix (which tables
// each trigger's rules put into); dot_graph() renders it with per-table
// usage statistics in Graphviz DOT format — the artefact class behind the
// paper's Fig 7 two-phase dataflow view.
#pragma once

#include <string>

#include "core/engine.h"

namespace jstar::viz {

/// Renders the engine's tables and observed dataflow edges as a DOT graph.
/// Node labels carry the per-table stats (puts / Δ-inserts / Γ-inserts /
/// rule fires); edge labels carry put counts.
std::string dot_graph(const Engine& engine, const std::string& title);

/// Plain-text statistics table, one row per table.
std::string stats_report(const Engine& engine);

}  // namespace jstar::viz
