#include "viz/runlog.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace jstar::viz {

namespace {

std::string orderby_string(const TableBase& t) {
  std::string s = "(";
  bool first = true;
  for (const auto& level : t.orderby_spec()) {
    if (!first) s += ", ";
    first = false;
    switch (level.kind) {
      case OrderByLevel::Kind::Lit: s += level.name; break;
      case OrderByLevel::Kind::Seq: s += "seq " + level.name; break;
      case OrderByLevel::Kind::Par: s += "par " + level.name; break;
    }
  }
  return s + ")";
}

json::Value table_to_json(const TableLog& t) {
  json::Array rules;
  for (const std::string& r : t.rules) rules.emplace_back(r);
  return json::Object{
      {"name", t.name},
      {"orderby", t.orderby},
      {"store", t.store},
      {"no_delta", t.no_delta},
      {"no_gamma", t.no_gamma},
      {"puts", t.puts},
      {"delta_inserts", t.delta_inserts},
      {"delta_dups", t.delta_dups},
      {"gamma_inserts", t.gamma_inserts},
      {"gamma_dups", t.gamma_dups},
      {"gamma_retired", t.gamma_retired},
      {"gamma_passed_through", t.gamma_passed_through},
      {"fires", t.fires},
      {"queries", t.queries},
      {"index_lookups", t.index_lookups},
      {"full_scans", t.full_scans},
      {"pk_probes", t.pk_probes},
      {"range_scans", t.range_scans},
      {"empty_plans", t.empty_plans},
      {"index_retired", t.index_retired},
      {"residual_rows", t.residual_rows},
      {"residual_hits", t.residual_hits},
      {"columnar_kernels", t.columnar_kernels},
      {"columnar_rows", t.columnar_rows},
      {"columnar_selected", t.columnar_selected},
      {"morsel_runs", t.morsel_runs},
      {"morsel_splits", t.morsel_splits},
      {"retracts", t.retracts},
      {"gamma_erased", t.gamma_erased},
      {"retract_debts", t.retract_debts},
      {"annihilated", t.annihilated},
      {"upserts", t.upserts},
      {"upsert_replaced", t.upsert_replaced},
      {"emit_flushes", t.emit_flushes},
      {"emit_buffered", t.emit_buffered},
      {"inline_batches", t.inline_batches},
      {"rules", std::move(rules)},
  };
}

TableLog table_from_json(const json::Value& v) {
  TableLog t;
  t.name = v.at("name").as_string();
  t.orderby = v.at("orderby").as_string();
  t.store = v.at("store").as_string();
  t.no_delta = v.at("no_delta").as_bool();
  t.no_gamma = v.at("no_gamma").as_bool();
  t.puts = v.at("puts").as_int();
  t.delta_inserts = v.at("delta_inserts").as_int();
  t.delta_dups = v.at("delta_dups").as_int();
  t.gamma_inserts = v.at("gamma_inserts").as_int();
  t.gamma_dups = v.at("gamma_dups").as_int();
  t.gamma_retired = v.at("gamma_retired").as_int();
  t.gamma_passed_through = v.at("gamma_passed_through").as_int();
  t.fires = v.at("fires").as_int();
  t.queries = v.at("queries").as_int();
  t.index_lookups = v.at("index_lookups").as_int();
  t.full_scans = v.at("full_scans").as_int();
  t.pk_probes = v.at("pk_probes").as_int();
  t.range_scans = v.at("range_scans").as_int();
  t.empty_plans = v.at("empty_plans").as_int();
  t.index_retired = v.at("index_retired").as_int();
  t.residual_rows = v.at("residual_rows").as_int();
  t.residual_hits = v.at("residual_hits").as_int();
  t.columnar_kernels = v.at("columnar_kernels").as_int();
  t.columnar_rows = v.at("columnar_rows").as_int();
  t.columnar_selected = v.at("columnar_selected").as_int();
  t.morsel_runs = v.at("morsel_runs").as_int();
  t.morsel_splits = v.at("morsel_splits").as_int();
  t.retracts = v.at("retracts").as_int();
  t.gamma_erased = v.at("gamma_erased").as_int();
  t.retract_debts = v.at("retract_debts").as_int();
  t.annihilated = v.at("annihilated").as_int();
  t.upserts = v.at("upserts").as_int();
  t.upsert_replaced = v.at("upsert_replaced").as_int();
  t.emit_flushes = v.at("emit_flushes").as_int();
  t.emit_buffered = v.at("emit_buffered").as_int();
  t.inline_batches = v.at("inline_batches").as_int();
  for (const json::Value& r : v.at("rules").as_array()) {
    t.rules.push_back(r.as_string());
  }
  return t;
}

}  // namespace

RunLog capture(const Engine& engine, const std::string& program,
               const RunReport& report) {
  RunLog log;
  log.program = program;
  log.batches = report.batches;
  log.tuples = report.tuples;
  log.seconds = report.seconds;
  const auto tables = engine.all_tables();
  for (const TableBase* t : tables) {
    const TableStats& s = t->stats();
    TableLog tl;
    tl.name = t->name();
    tl.orderby = orderby_string(*t);
    tl.store = t->store_describe();
    tl.no_delta = t->no_delta();
    tl.no_gamma = t->no_gamma();
    tl.puts = s.puts.load();
    tl.delta_inserts = s.delta_inserts.load();
    tl.delta_dups = s.delta_dups.load();
    tl.gamma_inserts = s.gamma_inserts.load();
    tl.gamma_dups = s.gamma_dups.load();
    tl.gamma_retired = s.gamma_retired.load();
    tl.gamma_passed_through = s.gamma_passed_through.load();
    tl.fires = s.fires.load();
    tl.queries = s.queries.load();
    tl.index_lookups = s.index_lookups.load();
    tl.full_scans = s.full_scans.load();
    tl.pk_probes = s.pk_probes.load();
    tl.range_scans = s.range_scans.load();
    tl.empty_plans = s.empty_plans.load();
    tl.index_retired = s.index_retired.load();
    tl.residual_rows = s.residual_rows.load();
    tl.residual_hits = s.residual_hits.load();
    tl.columnar_kernels = s.columnar_kernels.load();
    tl.columnar_rows = s.columnar_rows.load();
    tl.columnar_selected = s.columnar_selected.load();
    tl.morsel_runs = s.morsel_runs.load();
    tl.morsel_splits = s.morsel_splits.load();
    tl.retracts = s.retracts.load();
    tl.gamma_erased = s.gamma_erased.load();
    tl.retract_debts = s.retract_debts.load();
    tl.annihilated = s.annihilated.load();
    tl.upserts = s.upserts.load();
    tl.upsert_replaced = s.upsert_replaced.load();
    tl.emit_flushes = s.emit_flushes.load();
    tl.emit_buffered = s.emit_buffered.load();
    tl.inline_batches = s.inline_batches.load();
    tl.rules = t->rule_names();
    log.tables.push_back(std::move(tl));
  }
  const EdgeMatrix& edges = engine.edges();
  for (const TableBase* from : tables) {
    for (const TableBase* to : tables) {
      const std::int64_t n = edges.count(from->id(), to->id());
      if (n > 0) log.edges.push_back({from->name(), to->name(), n});
    }
  }
  return log;
}

std::string to_json(const RunLog& log) {
  json::Array tables;
  for (const TableLog& t : log.tables) tables.push_back(table_to_json(t));
  json::Array edges;
  for (const EdgeLog& e : log.edges) {
    edges.push_back(json::Object{
        {"from", e.from}, {"to", e.to}, {"count", e.count}});
  }
  const json::Value root = json::Object{
      {"program", log.program},
      {"batches", log.batches},
      {"tuples", log.tuples},
      {"seconds", log.seconds},
      {"tables", std::move(tables)},
      {"edges", std::move(edges)},
  };
  return json::write(root);
}

RunLog from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  RunLog log;
  log.program = root.at("program").as_string();
  log.batches = root.at("batches").as_int();
  log.tuples = root.at("tuples").as_int();
  log.seconds = root.at("seconds").as_number();
  for (const json::Value& t : root.at("tables").as_array()) {
    log.tables.push_back(table_from_json(t));
  }
  for (const json::Value& e : root.at("edges").as_array()) {
    log.edges.push_back({e.at("from").as_string(), e.at("to").as_string(),
                         e.at("count").as_int()});
  }
  return log;
}

void save(const RunLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write run log: " + path);
  out << to_json(log) << "\n";
}

RunLog load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read run log: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str());
}

std::string dot_graph(const RunLog& log) {
  // Hot-table threshold: top decile by fires (at least the max).
  std::int64_t hot = 0;
  for (const TableLog& t : log.tables) hot = std::max(hot, t.fires);
  hot = hot * 9 / 10;

  std::ostringstream os;
  os << "digraph \"" << log.program << "\" {\n"
     << "  rankdir=LR;\n"
     << "  label=\"" << log.program << ": " << log.batches << " batches, "
     << log.tuples << " tuples\";\n"
     << "  node [shape=record, fontsize=10];\n";
  for (std::size_t i = 0; i < log.tables.size(); ++i) {
    const TableLog& t = log.tables[i];
    os << "  t" << i << " [label=\"{" << t.name << " " << t.orderby
       << "|puts=" << t.puts << " fires=" << t.fires
       << "\\lgamma=" << t.gamma_inserts << " dup=" << t.gamma_dups;
    // -noGamma tables store nothing; show their throughput instead.
    if (t.no_gamma) os << " passed=" << t.gamma_passed_through;
    if (!t.store.empty()) os << " [" << t.store << "]";
    os << "\\lqueries=" << t.queries << " idx=" << t.index_lookups
       << " scan=" << t.full_scans << "\\l";
    // Planner access paths, shown only when some query routed off the
    // scan path (keeps planner-free programs' graphs unchanged).
    // residual_rows covers index probes, which have no counter of their
    // own in this sum (index_lookups predates the planner).
    if (t.pk_probes + t.range_scans + t.empty_plans + t.index_retired +
            t.residual_rows > 0) {
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.2f", t.residual_rate());
      os << "pk=" << t.pk_probes << " range=" << t.range_scans
         << " empty=" << t.empty_plans << " swept=" << t.index_retired
         << " sel=" << rate << "\\l";
    }
    // Retraction/upsert churn, shown only for tables that saw some.
    if (t.retracts + t.upserts > 0) {
      os << "retracts=" << t.retracts << " erased=" << t.gamma_erased
         << " debts=" << t.retract_debts << " upserts=" << t.upserts
         << " replaced=" << t.upsert_replaced << "\\l";
    }
    // Columnar kernel pushdown, shown only when a kernel actually ran.
    if (t.columnar_kernels > 0) {
      char ksel[32];
      std::snprintf(ksel, sizeof(ksel), "%.2f", t.kernel_selectivity());
      os << "kernels=" << t.columnar_kernels << " rows=" << t.columnar_rows
         << " ksel=" << ksel << "\\l";
    }
    // Morsel-parallel execution, shown only when a scan actually split.
    if (t.morsel_runs > 0) {
      os << "morsels=" << t.morsel_splits << " over " << t.morsel_runs
         << " runs\\l";
    }
    // Batch-at-a-time emission, shown only for tables that buffered or
    // fired inline at least once (keeps direct-put graphs unchanged).
    if (t.emit_buffered + t.inline_batches > 0) {
      os << "emitted=" << t.emit_buffered << " flushes=" << t.emit_flushes
         << " inline=" << t.inline_batches << "\\l";
    }
    os << "}\"";
    if (t.fires > 0 && t.fires >= hot) os << ", color=red, penwidth=2";
    if (t.no_delta || t.no_gamma) os << ", style=dashed";
    os << "];\n";
  }
  auto index_of = [&](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < log.tables.size(); ++i) {
      if (log.tables[i].name == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  for (const EdgeLog& e : log.edges) {
    const auto from = index_of(e.from);
    const auto to = index_of(e.to);
    if (from < 0 || to < 0) continue;
    os << "  t" << from << " -> t" << to << " [label=\"" << e.count
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace jstar::viz
